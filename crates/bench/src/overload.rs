//! Overload benchmark: open-loop offered load against a small engine at
//! 0.5×/1×/2× of its calibrated capacity, brownout on vs off.
//!
//! Each phase starts a fresh engine (result cache, coalescing, warm
//! state, and dedup all off, so every submission is real work), then a
//! single driver submits jobs on a fixed schedule — an *open* loop: the
//! driver does not wait for results, so when offered load exceeds
//! capacity the queue genuinely fills and the admission/brownout
//! machinery engages. Every job carries a deadline and a mixed priority
//! (0..=3, priority 0 sheddable under the default ladder).
//!
//! Reported per phase: goodput (jobs finishing *within* their deadline
//! per second), deadline-miss rate among accepted jobs, p50/p99 latency
//! of accepted jobs, and the typed rejection breakdown. The acceptance
//! gate for `BENCH_PR7.json`: at 2× offered load with brownout on, the
//! p99 latency of accepted jobs stays within 2× the 0.5×-load baseline.
//!
//! Caveat (as in `BENCH_PR4.json`/`BENCH_PR5.json`): numbers come from a
//! single shared machine; treat them as shape, not absolutes.

use fairsqg_datagen::{social_graph, SocialConfig};
use fairsqg_service::{
    AlgoKind, BrownoutConfig, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, SubmitError,
};
use fairsqg_wire::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmark's fixed query template (one refinable range literal).
const TEMPLATE: &str = "node u0 : director\nnode u1 : user\nedge u1 -recommend-> u0\n\
                        where u1.yearsOfExp >= ?\noutput u0\n";

/// One benchmark preset.
#[derive(Debug, Clone)]
pub struct OverloadOptions {
    /// Preset name, recorded in the report.
    pub preset: String,
    /// Director population of the generated social graph.
    pub directors: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Bounded queue capacity (small, so 2× load actually overflows).
    pub queue_capacity: usize,
    /// Jobs offered per phase.
    pub jobs_per_phase: usize,
    /// Closed-loop jobs used to calibrate base service time.
    pub calibration_jobs: usize,
    /// Offered-load multipliers swept (fractions of calibrated capacity).
    pub multipliers: Vec<f64>,
    /// Per-job deadline as a multiple of the calibrated service time.
    pub deadline_factor: f64,
}

/// Resolves a preset by name (`smoke`, `small`).
pub fn preset(name: &str) -> Option<OverloadOptions> {
    let (directors, workers, queue_capacity, jobs_per_phase, calibration_jobs, multipliers) =
        match name {
            // CI smoke: completion + the report shape only.
            "smoke" => (40, 2, 6, 10, 3, vec![0.5, 2.0]),
            "small" => (250, 2, 12, 48, 6, vec![0.5, 1.0, 2.0]),
            _ => return None,
        };
    Some(OverloadOptions {
        preset: name.to_string(),
        directors,
        workers,
        queue_capacity,
        jobs_per_phase,
        calibration_jobs,
        multipliers,
        deadline_factor: 2.5,
    })
}

fn bench_graph(opts: &OverloadOptions) -> fairsqg_graph::Graph {
    social_graph(SocialConfig {
        directors: opts.directors,
        majority_share: 0.6,
        seed: 0x0B5E,
    })
}

fn engine_config(opts: &OverloadOptions, brownout: bool) -> EngineConfig {
    EngineConfig {
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        // Every replay/sharing layer off: each admitted job is real work,
        // so the only overload valves are admission, brownout, and shed.
        cache_entries: 0,
        dedup_entries: 0,
        warm_state: false,
        coalesce: false,
        brownout: BrownoutConfig {
            enabled: brownout,
            // More sensitive than the service default: with deadline
            // admission also shaving the queue, a 0.5 queue-ratio trigger
            // would never be reached — brown out as soon as a few jobs
            // stack up, so the two valves actually compose.
            degraded_ratio: 0.25,
            ..BrownoutConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// The spec of phase-salted job `i`: a distinct λ per job (distinct
/// fingerprints — nothing coalesces or replays) and a cycling 0..=3
/// priority, so the shed valve has low-priority work to drop.
fn spec(salt: usize, i: usize, deadline_ms: Option<u64>) -> JobSpec {
    JobSpec {
        graph: "bench".into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 4,
        algo: AlgoKind::BiQGen,
        threads: 1,
        eps: 0.05,
        lambda: 0.30 + ((salt * 997 + i * 131) % 1201) as f64 * 0.0004,
        deadline_ms,
        budget: fairsqg_algo::MatchBudget::UNLIMITED,
        request_key: None,
        priority: (i % 4) as u8,
        client: None,
        subscribe: false,
    }
}

fn wait_terminal(engine: &Engine, id: u64) -> JobState {
    loop {
        let state = engine.status(id).expect("job exists").state;
        if state.is_terminal() {
            return state;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Calibrates the engine's base service time: a closed loop of
/// deadline-free jobs on a fresh engine, returning the mean service
/// milliseconds per job.
fn calibrate(opts: &OverloadOptions) -> f64 {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("bench", bench_graph(opts));
    let engine = Engine::start(registry, engine_config(opts, false));
    // One untimed warmup absorbs first-touch costs.
    let warm = engine.submit(spec(0, 0, None)).expect("warmup submit");
    assert_eq!(wait_terminal(&engine, warm), JobState::Done);
    let started = Instant::now();
    for i in 1..=opts.calibration_jobs {
        let id = engine.submit(spec(0, i, None)).expect("calibration submit");
        assert_eq!(wait_terminal(&engine, id), JobState::Done);
    }
    let mean_ms = started.elapsed().as_secs_f64() * 1e3 / opts.calibration_jobs as f64;
    engine.shutdown();
    mean_ms.max(0.1)
}

#[derive(Debug, Default)]
struct Rejections {
    overloaded: u64,
    deadline: u64,
    shed: u64,
    quota: u64,
    other: u64,
}

struct Phase {
    offered_jobs_per_sec: f64,
    offered_measured: usize,
    ramp_jobs: usize,
    accepted: usize,
    rejections: Rejections,
    goodput_jobs_per_sec: f64,
    deadline_miss_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
    wall_secs: f64,
    stats: Value,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Runs one open-loop phase at `multiplier` × calibrated capacity.
fn run_phase(
    opts: &OverloadOptions,
    brownout: bool,
    multiplier: f64,
    base_service_ms: f64,
    salt: usize,
) -> Phase {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("bench", bench_graph(opts));
    let engine = Engine::start(registry, engine_config(opts, brownout));
    // One untimed warmup absorbs the fresh engine's first-touch costs so
    // the low-load phases' small p99 samples aren't cold-start artifacts.
    let warm = engine
        .submit(spec(salt, opts.jobs_per_phase, None))
        .expect("warmup submit");
    assert_eq!(wait_terminal(&engine, warm), JobState::Done);

    // Capacity is one job per `base_service_ms` per *runnable* worker:
    // on a box with fewer hardware threads than workers (CI containers),
    // workers time-share a core and the parallelism term is the core
    // count, not the worker count — otherwise "0.5×" load is already
    // saturation and the whole sweep is mislabeled.
    let hw = crate::common::available_parallelism();
    let capacity_jobs_per_sec = opts.workers.min(hw) as f64 * 1e3 / base_service_ms;
    let offered_jobs_per_sec = capacity_jobs_per_sec * multiplier;
    let interval = Duration::from_secs_f64(1.0 / offered_jobs_per_sec);
    let deadline_ms = (base_service_ms * opts.deadline_factor).ceil() as u64;

    // Completions are polled *between* paced submissions (and every
    // 200µs afterwards), so a latency sample is taken within one poll
    // tick of the job actually settling — not after the whole offered
    // stream has been submitted.
    let poll_tick = Duration::from_micros(200);
    let poll = |pending: &mut Vec<(u64, Instant, bool)>, settled: &mut Vec<(JobState, f64)>| {
        pending.retain(|&(id, submitted, measured)| {
            let state = engine.status(id).expect("job exists").state;
            if state.is_terminal() {
                if measured {
                    settled.push((state, submitted.elapsed().as_secs_f64() * 1e3));
                }
                false
            } else {
                true
            }
        });
    };

    // The first quarter of the offered stream is the ramp: the pressure
    // controller and the admission EWMA need a few settlements before
    // they reflect the phase's load. Ramp jobs still run (they *create*
    // the pressure) but are excluded from the reported metrics, which
    // describe the steady state the resilience machinery converges to.
    let ramp_jobs = opts.jobs_per_phase / 4;

    let started = Instant::now();
    let mut pending: Vec<(u64, Instant, bool)> = Vec::with_capacity(opts.jobs_per_phase);
    let mut settled: Vec<(JobState, f64)> = Vec::with_capacity(opts.jobs_per_phase);
    let mut rejections = Rejections::default();
    for i in 0..opts.jobs_per_phase {
        let target = started + interval.mul_f64(i as f64);
        loop {
            poll(&mut pending, &mut settled);
            let now = Instant::now();
            let Some(remaining) = target.checked_duration_since(now) else {
                break;
            };
            std::thread::sleep(remaining.min(poll_tick));
        }
        let measured = i >= ramp_jobs;
        match engine.submit(spec(salt, i, Some(deadline_ms))) {
            Ok(id) => pending.push((id, Instant::now(), measured)),
            Err(e) if !measured => {
                let _ = e;
            }
            Err(SubmitError::Overloaded { .. }) => rejections.overloaded += 1,
            Err(SubmitError::DeadlineUnmeetable { .. }) => rejections.deadline += 1,
            Err(SubmitError::Shed { .. }) => rejections.shed += 1,
            Err(SubmitError::QuotaExceeded { .. }) => rejections.quota += 1,
            Err(other) => {
                rejections.other += 1;
                eprintln!("unexpected rejection: {other:?}");
            }
        }
    }
    while !pending.is_empty() {
        poll(&mut pending, &mut settled);
        std::thread::sleep(poll_tick);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    // The measured window starts where the ramp ends.
    let measured_secs = (wall_secs - ramp_jobs as f64 * interval.as_secs_f64()).max(f64::EPSILON);

    let accepted = settled.len();
    let mut done_latencies_ms: Vec<f64> = Vec::with_capacity(accepted);
    let mut within_deadline = 0usize;
    for (state, latency_ms) in settled {
        if state == JobState::Done {
            done_latencies_ms.push(latency_ms);
            if latency_ms <= deadline_ms as f64 {
                within_deadline += 1;
            }
        }
    }
    let stats = engine.stats_value();
    engine.shutdown();

    done_latencies_ms.sort_by(f64::total_cmp);
    Phase {
        offered_jobs_per_sec,
        offered_measured: opts.jobs_per_phase - ramp_jobs,
        ramp_jobs,
        accepted,
        rejections,
        goodput_jobs_per_sec: within_deadline as f64 / measured_secs,
        deadline_miss_rate: if accepted > 0 {
            1.0 - within_deadline as f64 / accepted as f64
        } else {
            0.0
        },
        p50_ms: percentile(&done_latencies_ms, 0.50),
        p99_ms: percentile(&done_latencies_ms, 0.99),
        wall_secs,
        stats,
    }
}

fn stat_u64(stats: &Value, block: &str, field: &str) -> u64 {
    stats
        .get(block)
        .and_then(|b| b.get(field))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn phase_value(p: &Phase) -> Value {
    Value::object([
        ("offered_jobs_per_sec", Value::from(p.offered_jobs_per_sec)),
        (
            "offered_jobs_measured",
            Value::from(p.offered_measured as i64),
        ),
        ("ramp_jobs_excluded", Value::from(p.ramp_jobs as i64)),
        ("accepted", Value::from(p.accepted as i64)),
        (
            "rejected",
            Value::object([
                ("overloaded", Value::from(p.rejections.overloaded)),
                ("deadline_unmeetable", Value::from(p.rejections.deadline)),
                ("shed", Value::from(p.rejections.shed)),
                ("quota", Value::from(p.rejections.quota)),
                ("other", Value::from(p.rejections.other)),
            ]),
        ),
        ("goodput_jobs_per_sec", Value::from(p.goodput_jobs_per_sec)),
        ("deadline_miss_rate", Value::from(p.deadline_miss_rate)),
        ("p50_ms", Value::from(p.p50_ms)),
        ("p99_ms", Value::from(p.p99_ms)),
        ("wall_secs", Value::from(p.wall_secs)),
        (
            "brownout_jobs",
            Value::from(stat_u64(&p.stats, "pressure", "brownout_jobs")),
        ),
        (
            "pressure_transitions",
            Value::from(stat_u64(&p.stats, "pressure", "transitions")),
        ),
    ])
}

/// Runs the full benchmark and returns the `BENCH_PR7.json` report.
pub fn run_overload(opts: &OverloadOptions) -> Value {
    let base_service_ms = calibrate(opts);
    let hw = crate::common::available_parallelism();

    let mut sweep = Vec::new();
    let mut baseline_p99 = None; // brownout on, lowest multiplier
    let mut stressed_p99 = None; // brownout on, highest multiplier
    for (mi, &multiplier) in opts.multipliers.iter().enumerate() {
        let off = run_phase(opts, false, multiplier, base_service_ms, mi * 2 + 1);
        let on = run_phase(opts, true, multiplier, base_service_ms, mi * 2 + 2);
        if mi == 0 {
            baseline_p99 = Some(on.p99_ms);
        }
        if mi == opts.multipliers.len() - 1 {
            stressed_p99 = Some(on.p99_ms);
        }
        sweep.push(Value::object([
            ("load_multiplier", Value::from(multiplier)),
            ("brownout_off", phase_value(&off)),
            ("brownout_on", phase_value(&on)),
        ]));
    }

    let baseline = baseline_p99.unwrap_or(0.0);
    let stressed = stressed_p99.unwrap_or(0.0);
    let ratio = if baseline > 0.0 {
        stressed / baseline
    } else {
        0.0
    };
    Value::object([
        ("bench", Value::from("overload-pr7")),
        ("preset", Value::from(opts.preset.as_str())),
        ("available_parallelism", Value::from(hw as i64)),
        ("hardware_threads", Value::from(hw as i64)),
        (
            "workers_clamped",
            Value::from(crate::common::clamped(opts.workers)),
        ),
        ("workers", Value::from(opts.workers as i64)),
        ("queue_capacity", Value::from(opts.queue_capacity as i64)),
        ("directors", Value::from(opts.directors as i64)),
        ("base_service_ms", Value::from(base_service_ms)),
        (
            "deadline_ms",
            Value::from((base_service_ms * opts.deadline_factor).ceil()),
        ),
        ("sweep", Value::Array(sweep)),
        (
            "acceptance",
            Value::object([
                (
                    "criterion",
                    Value::from(
                        "at max offered load with brownout on, p99 latency of accepted \
                         jobs stays within 2x the lowest-load baseline",
                    ),
                ),
                ("baseline_p99_ms", Value::from(baseline)),
                ("stressed_p99_ms", Value::from(stressed)),
                ("p99_ratio", Value::from(ratio)),
                ("pass", Value::from(baseline > 0.0 && ratio <= 2.0)),
            ]),
        ),
        (
            "caveat",
            Value::from(
                "single shared machine; open-loop pacing from one driver thread; \
                 treat numbers as shape, not absolutes",
            ),
        ),
    ])
}
