//! `repro` — regenerates the paper's tables and figures as text reports.
//!
//! Usage:
//!
//! ```text
//! repro all                 # every experiment
//! repro fig9a fig10a        # specific experiments
//! FAIRSQG_SCALE=small repro all
//! ```

use fairsqg_bench::scales::ExpScale;
use fairsqg_bench::{run_experiment, EXPERIMENTS};

fn export_workload(scale: &ExpScale) -> String {
    use fairsqg_algo::{online_qgen, OnlineOptions, ShuffledStream};
    use fairsqg_bench::common::configuration;
    use fairsqg_bench::export::workload_json;
    use fairsqg_datagen::{workload, CoverageMode, DatasetKind, WorkloadParams};
    let params = WorkloadParams {
        coverage: CoverageMode::AutoFraction(0.5),
        ..WorkloadParams::default()
    };
    let w = workload(DatasetKind::Lki, scale.lki, &params);
    let cfg = configuration(&w, 0.01);
    let stream = ShuffledStream::new(&w.domains, 0xE19);
    let (generated, _) = online_qgen(
        cfg,
        OnlineOptions {
            k: 10,
            window: 40,
            initial_eps: 0.01,
        },
        stream,
    );
    workload_json(&w, &generated)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExpScale::from_env();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    eprintln!(
        "# FairSQG reproduction harness (scale: DBP={}, LKI={}, Cite={}; set FAIRSQG_SCALE to change)",
        scale.dbp, scale.lki, scale.cite
    );
    let mut unknown = Vec::new();
    for name in selected {
        if name == "export" {
            println!("{}", export_workload(&scale));
            continue;
        }
        match run_experiment(name, &scale) {
            Some(report) => {
                println!("\n{report}");
            }
            None => unknown.push(name.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {}; available: {}",
            unknown.join(", "),
            EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    }
}
