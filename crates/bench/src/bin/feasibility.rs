//! Feasibility probe (the paper's headline efficiency claim: "it takes
//! 78 seconds to produce instances with desired coverage in real-life
//! graphs with 30 million nodes and edges").
//!
//! Builds the LKI-like graph at a requested scale, runs `BiQGen` once on
//! the default workload, and reports sizes and wall-clock time.
//!
//! ```text
//! cargo run -p fairsqg-bench --release --bin feasibility -- 100000
//! ```

use fairsqg_algo::{biqgen, BiQGenOptions};
use fairsqg_bench::common::configuration;
use fairsqg_datagen::{workload, CoverageMode, DatasetKind, WorkloadParams};
use std::time::Instant;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    let t0 = Instant::now();
    let params = WorkloadParams {
        coverage: CoverageMode::AutoFraction(0.5),
        ..WorkloadParams::default()
    };
    let w = workload(DatasetKind::Lki, scale, &params);
    println!(
        "graph built in {:.1}s: |V| = {}, |E| = {} ({} total elements)",
        t0.elapsed().as_secs_f64(),
        w.graph.node_count(),
        w.graph.edge_count(),
        w.graph.node_count() + w.graph.edge_count()
    );
    println!(
        "workload: |I(Q)| = {}, coverage {:?}",
        w.instance_space_size(),
        w.spec.constraints()
    );

    let cfg = configuration(&w, 0.01);
    let t1 = Instant::now();
    let out = biqgen(cfg, BiQGenOptions::default());
    println!(
        "BiQGen: {} suggestions in {:.1}s ({} verified, {} quick-pruned, {} sandwich-pruned)",
        out.entries.len(),
        t1.elapsed().as_secs_f64(),
        out.stats.verified,
        out.stats.pruned_infeasible,
        out.stats.pruned_sandwich
    );
    for e in out.entries.iter().take(5) {
        println!(
            "  δ={:.1} f={:.0} counts={:?}",
            e.result.objectives.delta, e.result.objectives.fcov, e.result.counts
        );
    }
}
