//! `storage` — runs the PR-6 storage benchmark and writes
//! `BENCH_STORE.json`.
//!
//! Usage:
//!
//! ```text
//! storage [output.json]                # default output: BENCH_STORE.json
//! FAIRSQG_STORE_PRESET=smoke storage   # smoke|small|large (default: small)
//! ```
//!
//! Sweeps TSV emit / TSV parse / streaming convert / mmap open across the
//! DBP, LKI, and Cite presets, then gates the mmap load path on serving
//! generation with archives bit-identical to the TSV path (the run aborts
//! on a single differing bit). `large` is the million-node preset.

use fairsqg_bench::storage::{preset, run_storage};
use fairsqg_wire::Value;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_STORE.json".to_string());
    let preset_name = std::env::var("FAIRSQG_STORE_PRESET").unwrap_or_else(|_| "small".to_string());
    let Some(opts) = preset(&preset_name) else {
        eprintln!("unknown FAIRSQG_STORE_PRESET '{preset_name}' (smoke|small|large)");
        std::process::exit(2);
    };
    let report = run_storage(&opts);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let summary = report.get("summary").expect("summary");
    println!(
        "storage ({preset_name}): archives bit-identical; \
         min mmap-open speedup vs parse {:.1}x, max mmap heap fraction {:.3} -> {out_path}",
        summary
            .get("min_open_speedup_vs_parse")
            .and_then(Value::as_f64)
            .unwrap(),
        summary
            .get("max_mmap_heap_fraction")
            .and_then(Value::as_f64)
            .unwrap(),
    );
}
