//! `hotpath` — runs the PR-4 hot-path A/B benchmark and writes
//! `BENCH_PR4.json`.
//!
//! Usage:
//!
//! ```text
//! hotpath [output.json]          # default output: BENCH_PR4.json
//! FAIRSQG_SCALE=small hotpath    # small|medium|large (default: small)
//! ```
//!
//! Every timed pair doubles as an equivalence check: the run aborts if the
//! optimized path's archive differs from the reference path's by a single
//! bit, so the emitted speedups are for provably identical results.

use fairsqg_bench::hotpath::run_hotpath;
use fairsqg_bench::scales::ExpScale;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let scale_name = std::env::var("FAIRSQG_SCALE").unwrap_or_else(|_| "small".to_string());
    let scale = match scale_name.as_str() {
        "small" => ExpScale::SMALL,
        "medium" => ExpScale::MEDIUM,
        "large" => ExpScale::LARGE,
        other => {
            eprintln!("unknown FAIRSQG_SCALE '{other}' (small|medium|large)");
            std::process::exit(2);
        }
    };
    let report = run_hotpath(&scale, &scale_name);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let summary = report.get("summary").expect("summary");
    println!(
        "hotpath ({scale_name}): min speedup {:.2}x, geomean {:.2}x, \
         8-thread efficiency vs hardware {:.2} ({} hw threads) -> {out_path}",
        summary.get("min_speedup").and_then(|v| v.as_f64()).unwrap(),
        summary
            .get("geomean_speedup")
            .and_then(|v| v.as_f64())
            .unwrap(),
        summary
            .get("min_eight_thread_efficiency_vs_hardware")
            .and_then(|v| v.as_f64())
            .unwrap(),
        report
            .get("hardware_threads")
            .and_then(|v| v.as_i64())
            .unwrap(),
    );
}
