//! `order` — runs the PR-10 matching-order A/B benchmark and writes
//! `BENCH_PR10.json`.
//!
//! Usage:
//!
//! ```text
//! order [output.json]          # default output: BENCH_PR10.json
//! FAIRSQG_SCALE=small order    # small|medium|large (default: small)
//! ```
//!
//! Every timed pair is equivalence-gated before timing: the cost-based
//! adaptive order (+ semi-join pruning) must produce an archive
//! bit-identical to both the optimizer-off baseline and the brute
//! reference path, so the emitted speedups are for provably identical
//! results.

use fairsqg_bench::order::run_order;
use fairsqg_bench::scales::ExpScale;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let scale_name = std::env::var("FAIRSQG_SCALE").unwrap_or_else(|_| "small".to_string());
    let scale = match scale_name.as_str() {
        "small" => ExpScale::SMALL,
        "medium" => ExpScale::MEDIUM,
        "large" => ExpScale::LARGE,
        other => {
            eprintln!("unknown FAIRSQG_SCALE '{other}' (small|medium|large)");
            std::process::exit(2);
        }
    };
    let report = run_order(&scale, &scale_name);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let summary = report.get("summary").expect("summary");
    println!(
        "order ({scale_name}): min speedup {:.2}x, geomean {:.2}x -> {out_path}",
        summary.get("min_speedup").and_then(|v| v.as_f64()).unwrap(),
        summary
            .get("geomean_speedup")
            .and_then(|v| v.as_f64())
            .unwrap(),
    );
}
