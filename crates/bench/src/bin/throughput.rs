//! `throughput` — runs the PR-5 service throughput benchmark and writes
//! `BENCH_PR5.json`.
//!
//! Usage:
//!
//! ```text
//! throughput [output.json]              # default output: BENCH_PR5.json
//! FAIRSQG_TP_PRESET=smoke throughput    # smoke|small|medium (default: small)
//! ```
//!
//! The benchmark drives a real in-process server over TCP with 1/2/4/8/16
//! closed-loop clients, warm-vs-cold. Before any timing it asserts that
//! warm archives are bit-identical to cold ones and aborts otherwise, so
//! the emitted speedups are for provably identical results.

use fairsqg_bench::throughput::{preset, run_throughput};
use fairsqg_wire::Value;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let preset_name = std::env::var("FAIRSQG_TP_PRESET").unwrap_or_else(|_| "small".to_string());
    let Some(opts) = preset(&preset_name) else {
        eprintln!("unknown FAIRSQG_TP_PRESET '{preset_name}' (smoke|small|medium)");
        std::process::exit(2);
    };
    let report = run_throughput(&opts);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let speedup = report
        .get("summary")
        .and_then(|s| s.get("warm_speedup_at_8_clients"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    println!(
        "throughput ({preset_name}): archives bit-identical; \
         warm speedup at 8 clients {speedup:.2}x -> {out_path}"
    );
}
