//! `mplex` — runs the PR-8 multiplexed-server benchmark and writes
//! `BENCH_PR8.json`.
//!
//! Usage:
//!
//! ```text
//! mplex [output.json]                # default output: BENCH_PR8.json
//! FAIRSQG_MPLEX_PRESET=smoke mplex   # smoke|full (default: full)
//! ```
//!
//! The benchmark compares the readiness-driven multiplexed core (one
//! event-loop thread, N clients on one connection each with every job in
//! flight) against the thread-per-connection blocking baseline, at 64 and
//! 256 clients on the `full` preset. Before any timing it asserts that
//! streamed delta frames reassemble bit-identically to the `result` op's
//! archive (including a deadline-truncated job) and aborts otherwise.

use fairsqg_bench::mplex::{preset, run_mplex};
use fairsqg_wire::Value;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let preset_name = std::env::var("FAIRSQG_MPLEX_PRESET").unwrap_or_else(|_| "full".to_string());
    let Some(opts) = preset(&preset_name) else {
        eprintln!("unknown FAIRSQG_MPLEX_PRESET '{preset_name}' (smoke|full)");
        std::process::exit(2);
    };
    let report = run_mplex(&opts);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let at64 = report
        .get("summary")
        .and_then(|s| s.get("mux_speedup_at_64_clients"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let at_max = report
        .get("summary")
        .and_then(|s| s.get("mux_speedup_at_max_clients"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    println!(
        "mplex ({preset_name}): streamed archives bit-identical; \
         mux speedup {at64:.2}x at 64 clients, {at_max:.2}x at max -> {out_path}"
    );
}
