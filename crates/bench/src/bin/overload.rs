//! `overload` — runs the PR-7 overload benchmark and writes
//! `BENCH_PR7.json`.
//!
//! Usage:
//!
//! ```text
//! overload [output.json]              # default output: BENCH_PR7.json
//! FAIRSQG_OL_PRESET=smoke overload    # smoke|small (default: small)
//! ```
//!
//! The benchmark calibrates the engine's base service time, then offers
//! open-loop load at 0.5×/1×/2× of calibrated capacity with brownout on
//! vs off, reporting goodput, deadline-miss rate, typed rejections, and
//! p50/p99 latency of accepted jobs. The acceptance gate: at the highest
//! offered load with brownout on, p99 latency of accepted jobs stays
//! within 2× the lowest-load baseline.

use fairsqg_bench::overload::{preset, run_overload};
use fairsqg_wire::Value;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let preset_name = std::env::var("FAIRSQG_OL_PRESET").unwrap_or_else(|_| "small".to_string());
    let Some(opts) = preset(&preset_name) else {
        eprintln!("unknown FAIRSQG_OL_PRESET '{preset_name}' (smoke|small)");
        std::process::exit(2);
    };
    let report = run_overload(&opts);
    let json = fairsqg_wire::to_string_pretty(&report);
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    let acceptance = report.get("acceptance").expect("report has acceptance");
    let ratio = acceptance
        .get("p99_ratio")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let pass = acceptance
        .get("pass")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    println!(
        "overload ({preset_name}): stressed/baseline p99 ratio {ratio:.2} \
         (acceptance {}) -> {out_path}",
        if pass { "PASS" } else { "FAIL" }
    );
    // The smoke preset exists for CI: it checks completion and report
    // shape, but its graph is too small for the degraded budget to bite,
    // so its p99 ratio is scheduler noise and must not gate the build.
    if !pass && preset_name != "smoke" {
        std::process::exit(1);
    }
}
