//! # fairsqg-faults
//!
//! A deterministic fail-point layer for chaos-testing the FairSQG stack.
//!
//! Production code places *named points* on its failure-prone paths:
//!
//! ```
//! if let Some(fault) = fairsqg_faults::fire("queue.admit") {
//!     match fault {
//!         fairsqg_faults::Fault::Error(msg) => { /* return a structured error */ }
//!         fairsqg_faults::Fault::ReturnEarly => { /* skip the step */ }
//!     }
//! }
//! ```
//!
//! Points are *armed* with an action — [`arm`] programmatically, or the
//! `FAIRSQG_FAILPOINTS` environment variable
//! (`point=action[;point=action...]`) read once on first use. Supported
//! actions:
//!
//! | action         | effect at the point                               |
//! |----------------|---------------------------------------------------|
//! | `panic`        | `panic!` (optionally `panic(message)`)            |
//! | `error`        | yields [`Fault::Error`] (optionally `error(msg)`) |
//! | `sleep(ms)`    | blocks the calling thread for `ms` milliseconds   |
//! | `return_early` | yields [`Fault::ReturnEarly`]                     |
//! | `off`          | disarms the point                                 |
//!
//! Any action can be limited to the first `N` firings with an `N*` prefix
//! (`2*error(connection reset)`), after which the point is spent and
//! subsequent [`fire`] calls pass through — this makes "fail twice, then
//! recover" retry tests deterministic.
//!
//! Without the `failpoints` cargo feature every function in this crate is
//! a no-op ([`fire`] is a constant `None`), so release builds carry no
//! registry, no locks, and no branches beyond one inlined return.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// What an armed point asks the calling code to do.
///
/// `Panic` and `Sleep` are handled inside [`fire`] itself; only the two
/// variants a caller must act on are surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail the current operation with this message.
    Error(String),
    /// Skip the guarded step (e.g. drop a cache insert) and continue.
    ReturnEarly,
}

#[cfg(feature = "failpoints")]
mod enabled {
    use super::Fault;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};

    #[derive(Debug, Clone)]
    enum Action {
        Panic(Option<String>),
        Error(String),
        SleepMs(u64),
        ReturnEarly,
    }

    struct Entry {
        action: Action,
        /// `None` = unlimited; `Some(n)` = fire `n` more times, then pass
        /// through.
        remaining: Option<u64>,
        hits: u64,
    }

    /// Fast path: a single relaxed load when nothing was ever armed.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);

    fn registry() -> &'static Mutex<HashMap<String, Entry>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("FAIRSQG_FAILPOINTS") {
                for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
                    if let Some((name, action)) = part.split_once('=') {
                        if let Ok(entry) = parse_entry(action.trim()) {
                            map.insert(name.trim().to_string(), entry);
                        }
                    }
                }
                if !map.is_empty() {
                    ANY_ARMED.store(true, Ordering::Release);
                }
            }
            Mutex::new(map)
        })
    }

    fn parse_entry(spec: &str) -> Result<Entry, String> {
        let (remaining, action) = match spec.split_once('*') {
            Some((n, rest)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count in '{spec}'"))?;
                (Some(n), rest.trim())
            }
            None => (None, spec),
        };
        let (head, arg) = match action.split_once('(') {
            Some((h, rest)) => {
                let arg = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed '(' in '{spec}'"))?;
                (h.trim(), Some(arg.to_string()))
            }
            None => (action.trim(), None),
        };
        let action = match head {
            "panic" => Action::Panic(arg),
            "error" => Action::Error(arg.unwrap_or_else(|| "injected fault".to_string())),
            "sleep" => Action::SleepMs(
                arg.ok_or_else(|| "sleep needs a duration: sleep(ms)".to_string())?
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad sleep duration in '{spec}'"))?,
            ),
            "return_early" => Action::ReturnEarly,
            other => return Err(format!("unknown fail-point action '{other}'")),
        };
        Ok(Entry {
            action,
            remaining,
            hits: 0,
        })
    }

    pub fn arm(name: &str, action: &str) -> Result<(), String> {
        if action.trim() == "off" {
            disarm(name);
            return Ok(());
        }
        let entry = parse_entry(action)?;
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), entry);
        ANY_ARMED.store(true, Ordering::Release);
        Ok(())
    }

    pub fn disarm(name: &str) {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }

    pub fn disarm_all() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    pub fn hits(name: &str) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |e| e.hits)
    }

    pub fn fire(name: &str) -> Option<Fault> {
        // Force the registry (and with it the FAIRSQG_FAILPOINTS parse) to
        // initialize before consulting the fast-path flag — otherwise
        // env-armed points never fire because nothing else touches the
        // registry. Once initialized this is a single atomic load.
        registry();
        if !ANY_ARMED.load(Ordering::Acquire) {
            return None;
        }
        // Decide under the lock, act after releasing it: a `panic` action
        // must not poison the registry, and a `sleep` must not serialize
        // unrelated points.
        let action = {
            let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
            let entry = map.get_mut(name)?;
            match entry.remaining {
                Some(0) => return None,
                Some(ref mut n) => *n -= 1,
                None => {}
            }
            entry.hits += 1;
            entry.action.clone()
        };
        match action {
            Action::Panic(msg) => {
                let msg = msg.unwrap_or_else(|| format!("fail point '{name}' panicked"));
                panic!("{msg}");
            }
            Action::Error(msg) => Some(Fault::Error(msg)),
            Action::SleepMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Action::ReturnEarly => Some(Fault::ReturnEarly),
        }
    }
}

/// Evaluates the fail point `name`.
///
/// Returns `None` when the point is disarmed, spent, or fail points are
/// compiled out. A `panic` action panics here; a `sleep(ms)` action blocks
/// and then returns `None`; `error`/`return_early` are returned for the
/// caller to act on.
#[cfg(feature = "failpoints")]
pub fn fire(name: &str) -> Option<Fault> {
    enabled::fire(name)
}

/// No-op (fail points compiled out).
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(_name: &str) -> Option<Fault> {
    None
}

/// Arms `name` with `action` (see the crate docs for the action grammar).
///
/// Errors on a malformed action, or — so that chaos tests fail loudly
/// instead of silently testing nothing — when fail points are compiled out.
#[cfg(feature = "failpoints")]
pub fn arm(name: &str, action: &str) -> Result<(), String> {
    enabled::arm(name, action)
}

/// Always errors (fail points compiled out).
#[cfg(not(feature = "failpoints"))]
pub fn arm(_name: &str, _action: &str) -> Result<(), String> {
    Err("fail points are compiled out (enable the `failpoints` feature)".into())
}

/// Disarms `name` (no-op if not armed or compiled out).
pub fn disarm(name: &str) {
    #[cfg(feature = "failpoints")]
    enabled::disarm(name);
    #[cfg(not(feature = "failpoints"))]
    let _ = name;
}

/// Disarms every point (no-op when compiled out).
pub fn disarm_all() {
    #[cfg(feature = "failpoints")]
    enabled::disarm_all();
}

/// How many times `name` has fired (always 0 when compiled out).
pub fn hits(name: &str) -> u64 {
    #[cfg(feature = "failpoints")]
    return enabled::hits(name);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        0
    }
}

/// RAII guard that disarms its point on drop — keeps chaos tests from
/// leaking armed points into each other.
pub struct Guard(String);

impl Guard {
    /// Arms `name` with `action`, disarming it when the guard drops.
    pub fn arm(name: &str, action: &str) -> Result<Self, String> {
        arm(name, action)?;
        Ok(Self(name.to_string()))
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        disarm(&self.0);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // Tests share a process-global registry; use distinct point names.

    #[test]
    fn disarmed_points_pass_through() {
        assert_eq!(fire("t.nothing"), None);
    }

    #[test]
    fn error_action_fires_and_counts() {
        arm("t.err", "error(boom)").unwrap();
        assert_eq!(fire("t.err"), Some(Fault::Error("boom".into())));
        assert_eq!(hits("t.err"), 1);
        disarm("t.err");
        assert_eq!(fire("t.err"), None);
    }

    #[test]
    fn count_limits_are_honored() {
        arm("t.twice", "2*error(x)").unwrap();
        assert!(fire("t.twice").is_some());
        assert!(fire("t.twice").is_some());
        assert_eq!(fire("t.twice"), None, "spent after two firings");
        assert_eq!(hits("t.twice"), 2);
        disarm("t.twice");
    }

    #[test]
    fn return_early_and_guard() {
        {
            let _g = Guard::arm("t.skip", "return_early").unwrap();
            assert_eq!(fire("t.skip"), Some(Fault::ReturnEarly));
        }
        assert_eq!(fire("t.skip"), None, "guard disarms on drop");
    }

    #[test]
    fn panic_action_panics() {
        arm("t.panic", "panic(kaboom)").unwrap();
        let err = std::panic::catch_unwind(|| fire("t.panic")).unwrap_err();
        disarm("t.panic");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("kaboom"));
    }

    #[test]
    fn sleep_action_blocks_then_passes() {
        arm("t.sleep", "sleep(30)").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(fire("t.sleep"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        disarm("t.sleep");
    }

    #[test]
    fn malformed_actions_are_rejected() {
        assert!(arm("t.bad", "explode").is_err());
        assert!(arm("t.bad", "sleep").is_err());
        assert!(arm("t.bad", "x*error").is_err());
        assert!(arm("t.bad", "sleep(abc)").is_err());
    }

    #[test]
    fn off_disarms() {
        arm("t.off", "error").unwrap();
        arm("t.off", "off").unwrap();
        assert_eq!(fire("t.off"), None);
    }
}
