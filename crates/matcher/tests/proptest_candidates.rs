//! Property-based equivalence of the indexed candidate computation and
//! the naive label-population scan, on random graphs and random literal
//! conjunctions. The indexed path (binary-searched range slices, gallop
//! intersection, scan fallback) must return exactly the scan's node set —
//! it is a pure performance substitution.

use fairsqg_graph::{AttrValue, CmpOp, Graph, GraphBuilder, NodeId};
use fairsqg_matcher::{
    candidates, candidates_from_pool, candidates_scan, match_output_set,
    match_output_set_bruteforce, plan_matching_order, satisfies_literals, MatchOptions,
};
use fairsqg_query::{BoundLiteral, ConcreteNode, ConcreteQuery, QNodeId};
use proptest::prelude::*;

/// One random attribute: `(attr, value, as_string)`.
type RawAttr = (u8, i64, bool);

/// Raw random multi-node query: per-node `(label, literals)` plus, for
/// every node past the first, an edge to an earlier node (random peer
/// pick, direction, and label) so the shape is always connected — the
/// matcher only ever sees connected components.
type RawQueryNode = (u8, Vec<(u8, u8, i64)>);
type RawQueryEdge = (u8, bool, u8);

/// Raw random graph: nodes as `(label, attrs)`. Values mix ints and
/// interned strings to exercise the `AttrValue` total order
/// (`Int < Str`) the postings are sorted by.
#[derive(Debug, Clone)]
struct RawGraph {
    nodes: Vec<(u8, Vec<RawAttr>)>,
}

fn arb_raw() -> impl Strategy<Value = RawGraph> {
    proptest::collection::vec(
        (
            0u8..3,
            proptest::collection::vec((0u8..3, -20i64..20, any::<bool>()), 0..4),
        ),
        1..60,
    )
    .prop_map(|nodes| RawGraph { nodes })
}

fn build(raw: &RawGraph) -> Graph {
    build_edged(raw, &[])
}

/// Builds the random graph, plus random edges given as
/// `(src, dst, label)` raw indices reduced modulo the node count.
fn build_edged(raw: &RawGraph, edges: &[(u8, u8, u8)]) -> Graph {
    let mut b = GraphBuilder::new();
    let labels = ["l0", "l1", "l2"];
    let attrs = ["a0", "a1", "a2"];
    // Pre-intern every label/attribute so queries can name them even when
    // the random graph never used one.
    for l in labels {
        b.schema_mut().node_label(l);
    }
    for a in attrs {
        b.schema_mut().attr(a);
    }
    for e in ["e0", "e1"] {
        b.schema_mut().edge_label(e);
    }
    let mut ids = Vec::new();
    for (l, at) in &raw.nodes {
        let named: Vec<(&str, AttrValue)> = at
            .iter()
            .map(|&(a, v, s)| {
                let value = if s {
                    AttrValue::Str(b.schema_mut().symbol(&format!("s{v}")))
                } else {
                    AttrValue::Int(v)
                };
                (attrs[a as usize], value)
            })
            .collect();
        ids.push(b.add_named_node(labels[*l as usize], &named));
    }
    for &(src, dst, label) in edges {
        let src = ids[src as usize % ids.len()];
        let dst = ids[dst as usize % ids.len()];
        b.add_named_edge(src, dst, if label % 2 == 0 { "e0" } else { "e1" });
    }
    b.finish()
}

/// A single-node concrete query carrying the literal conjunction. String
/// constants fall back to ints when the symbol was never interned.
fn query_for(graph: &Graph, label: u8, lits: &[(u8, u8, i64, bool)]) -> ConcreteQuery {
    let s = graph.schema();
    let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt];
    let literals = lits
        .iter()
        .map(|&(a, op, c, as_str)| BoundLiteral {
            attr: s.find_attr(&format!("a{a}")).unwrap(),
            op: ops[op as usize % ops.len()],
            value: match s.find_symbol(&format!("s{c}")) {
                Some(sym) if as_str => AttrValue::Str(sym),
                _ => AttrValue::Int(c),
            },
        })
        .collect();
    ConcreteQuery {
        nodes: vec![ConcreteNode {
            label: s.find_node_label(&format!("l{label}")).unwrap(),
            literals,
        }],
        active: vec![true],
        edges: Vec::new(),
        output: QNodeId(0),
    }
}

/// A connected multi-node concrete query. Node `i > 0` gets one edge to
/// peer `raw_edge.0 % i` (direction/label from the raw edge), so every
/// node reaches the output and the whole query is one component.
fn multi_query_for(graph: &Graph, nodes: &[RawQueryNode], edges: &[RawQueryEdge]) -> ConcreteQuery {
    let s = graph.schema();
    let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt];
    let concrete: Vec<ConcreteNode> = nodes
        .iter()
        .map(|(label, lits)| ConcreteNode {
            label: s.find_node_label(&format!("l{label}")).unwrap(),
            literals: lits
                .iter()
                .map(|&(a, op, c)| BoundLiteral {
                    attr: s.find_attr(&format!("a{a}")).unwrap(),
                    op: ops[op as usize % ops.len()],
                    value: AttrValue::Int(c),
                })
                .collect(),
        })
        .collect();
    let q_edges = edges
        .iter()
        .enumerate()
        .map(|(i, &(peer, outgoing, label))| {
            let this = QNodeId(i as u8 + 1);
            let peer = QNodeId(peer % (i as u8 + 1));
            let label = s
                .find_edge_label(if label % 2 == 0 { "e0" } else { "e1" })
                .unwrap();
            if outgoing {
                (this, peer, label)
            } else {
                (peer, this, label)
            }
        })
        .collect();
    ConcreteQuery {
        active: vec![true; concrete.len()],
        nodes: concrete,
        edges: q_edges,
        output: QNodeId(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Indexed candidates equal the naive scan, node for node.
    #[test]
    fn indexed_candidates_equal_scan(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..4),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let fast = candidates(&g, &q, QNodeId(0));
        let slow = candidates_scan(&g, &q, QNodeId(0));
        prop_assert_eq!(&fast, &slow);
        // Both are sorted ascending (the matcher relies on it).
        prop_assert!(fast.windows(2).all(|w| w[0] < w[1]));
    }

    /// Pool restriction equals the scan filtered to the pool, for any
    /// label-homogeneous pool.
    #[test]
    fn pool_candidates_equal_filtered_scan(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..3),
        keep in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let node_label = q.nodes[0].label;
        let pool: Vec<NodeId> = g
            .nodes_with_label(node_label)
            .iter()
            .copied()
            .filter(|v| keep[v.index() % keep.len()])
            .collect();
        let from_pool = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        let expected: Vec<NodeId> = candidates_scan(&g, &q, QNodeId(0))
            .into_iter()
            .filter(|v| pool.binary_search(v).is_ok())
            .collect();
        prop_assert_eq!(from_pool, expected);
    }

    /// Pool restriction equals the naive scan *over the pool itself*:
    /// walk the pool in order and keep exactly the nodes satisfying every
    /// literal. This oracle is independent of `candidates_scan`, so it
    /// also pins down that `candidates_from_pool` preserves pool order
    /// and never pulls in nodes from outside the pool.
    #[test]
    fn pool_candidates_equal_scan_over_pool(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..4),
        keep in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let node_label = q.nodes[0].label;
        let pool: Vec<NodeId> = g
            .nodes_with_label(node_label)
            .iter()
            .copied()
            .filter(|v| keep[v.index() % keep.len()])
            .collect();
        let from_pool = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        let reference: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&v| satisfies_literals(&g, v, &q.nodes[0].literals))
            .collect();
        prop_assert_eq!(from_pool, reference);
    }

    /// The optimized backtracker (cost-based order + semi-join pruning),
    /// the pre-optimizer greedy baseline, and an explicitly pre-planned
    /// order all return exactly the brute-force match set on random
    /// edged graphs and random connected multi-node queries. Graphs are
    /// kept small (≤ 24 nodes, ≤ 3 query nodes) so the exponential
    /// oracle stays tractable.
    #[test]
    fn optimized_match_set_equals_bruteforce(
        raw in proptest::collection::vec(
            (0u8..3, proptest::collection::vec((0u8..3, -5i64..5, Just(false)), 0..2)),
            1..24,
        ).prop_map(|nodes| RawGraph { nodes }),
        graph_edges in proptest::collection::vec((0u8..255, 0u8..255, 0u8..2), 0..48),
        q_nodes in proptest::collection::vec(
            (0u8..3, proptest::collection::vec((0u8..3, 0u8..5, -5i64..5), 0..2)),
            1..4,
        ),
        q_edges in proptest::collection::vec((0u8..255, any::<bool>(), 0u8..2), 2),
    ) {
        let g = build_edged(&raw, &graph_edges);
        let q = multi_query_for(&g, &q_nodes, &q_edges[..q_nodes.len() - 1]);
        let oracle = match_output_set_bruteforce(&g, &q);
        let optimized = match_output_set(&g, &q, MatchOptions::default());
        prop_assert_eq!(&optimized, &oracle, "optimized path diverged");
        let baseline = match_output_set(
            &g,
            &q,
            MatchOptions { optimize: false, ..MatchOptions::default() },
        );
        prop_assert_eq!(&baseline, &oracle, "greedy baseline diverged");
        let plan = plan_matching_order(&g, &q);
        let planned = match_output_set(
            &g,
            &q,
            MatchOptions { plan: Some(&plan), ..MatchOptions::default() },
        );
        prop_assert_eq!(&planned, &oracle, "pre-planned order diverged");
    }
}
