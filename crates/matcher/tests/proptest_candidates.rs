//! Property-based equivalence of the indexed candidate computation and
//! the naive label-population scan, on random graphs and random literal
//! conjunctions. The indexed path (binary-searched range slices, gallop
//! intersection, scan fallback) must return exactly the scan's node set —
//! it is a pure performance substitution.

use fairsqg_graph::{AttrValue, CmpOp, Graph, GraphBuilder, NodeId};
use fairsqg_matcher::{candidates, candidates_from_pool, candidates_scan, satisfies_literals};
use fairsqg_query::{BoundLiteral, ConcreteNode, ConcreteQuery, QNodeId};
use proptest::prelude::*;

/// One random attribute: `(attr, value, as_string)`.
type RawAttr = (u8, i64, bool);

/// Raw random graph: nodes as `(label, attrs)`. Values mix ints and
/// interned strings to exercise the `AttrValue` total order
/// (`Int < Str`) the postings are sorted by.
#[derive(Debug, Clone)]
struct RawGraph {
    nodes: Vec<(u8, Vec<RawAttr>)>,
}

fn arb_raw() -> impl Strategy<Value = RawGraph> {
    proptest::collection::vec(
        (
            0u8..3,
            proptest::collection::vec((0u8..3, -20i64..20, any::<bool>()), 0..4),
        ),
        1..60,
    )
    .prop_map(|nodes| RawGraph { nodes })
}

fn build(raw: &RawGraph) -> Graph {
    let mut b = GraphBuilder::new();
    let labels = ["l0", "l1", "l2"];
    let attrs = ["a0", "a1", "a2"];
    // Pre-intern every label/attribute so queries can name them even when
    // the random graph never used one.
    for l in labels {
        b.schema_mut().node_label(l);
    }
    for a in attrs {
        b.schema_mut().attr(a);
    }
    for (l, at) in &raw.nodes {
        let named: Vec<(&str, AttrValue)> = at
            .iter()
            .map(|&(a, v, s)| {
                let value = if s {
                    AttrValue::Str(b.schema_mut().symbol(&format!("s{v}")))
                } else {
                    AttrValue::Int(v)
                };
                (attrs[a as usize], value)
            })
            .collect();
        b.add_named_node(labels[*l as usize], &named);
    }
    b.finish()
}

/// A single-node concrete query carrying the literal conjunction. String
/// constants fall back to ints when the symbol was never interned.
fn query_for(graph: &Graph, label: u8, lits: &[(u8, u8, i64, bool)]) -> ConcreteQuery {
    let s = graph.schema();
    let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt];
    let literals = lits
        .iter()
        .map(|&(a, op, c, as_str)| BoundLiteral {
            attr: s.find_attr(&format!("a{a}")).unwrap(),
            op: ops[op as usize % ops.len()],
            value: match s.find_symbol(&format!("s{c}")) {
                Some(sym) if as_str => AttrValue::Str(sym),
                _ => AttrValue::Int(c),
            },
        })
        .collect();
    ConcreteQuery {
        nodes: vec![ConcreteNode {
            label: s.find_node_label(&format!("l{label}")).unwrap(),
            literals,
        }],
        active: vec![true],
        edges: Vec::new(),
        output: QNodeId(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Indexed candidates equal the naive scan, node for node.
    #[test]
    fn indexed_candidates_equal_scan(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..4),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let fast = candidates(&g, &q, QNodeId(0));
        let slow = candidates_scan(&g, &q, QNodeId(0));
        prop_assert_eq!(&fast, &slow);
        // Both are sorted ascending (the matcher relies on it).
        prop_assert!(fast.windows(2).all(|w| w[0] < w[1]));
    }

    /// Pool restriction equals the scan filtered to the pool, for any
    /// label-homogeneous pool.
    #[test]
    fn pool_candidates_equal_filtered_scan(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..3),
        keep in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let node_label = q.nodes[0].label;
        let pool: Vec<NodeId> = g
            .nodes_with_label(node_label)
            .iter()
            .copied()
            .filter(|v| keep[v.index() % keep.len()])
            .collect();
        let from_pool = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        let expected: Vec<NodeId> = candidates_scan(&g, &q, QNodeId(0))
            .into_iter()
            .filter(|v| pool.binary_search(v).is_ok())
            .collect();
        prop_assert_eq!(from_pool, expected);
    }

    /// Pool restriction equals the naive scan *over the pool itself*:
    /// walk the pool in order and keep exactly the nodes satisfying every
    /// literal. This oracle is independent of `candidates_scan`, so it
    /// also pins down that `candidates_from_pool` preserves pool order
    /// and never pulls in nodes from outside the pool.
    #[test]
    fn pool_candidates_equal_scan_over_pool(
        raw in arb_raw(),
        label in 0u8..3,
        lits in proptest::collection::vec(
            (0u8..3, 0u8..5, -20i64..20, any::<bool>()), 0..4),
        keep in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let g = build(&raw);
        let q = query_for(&g, label, &lits);
        let node_label = q.nodes[0].label;
        let pool: Vec<NodeId> = g
            .nodes_with_label(node_label)
            .iter()
            .copied()
            .filter(|v| keep[v.index() % keep.len()])
            .collect();
        let from_pool = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        let reference: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&v| satisfies_literals(&g, v, &q.nodes[0].literals))
            .collect();
        prop_assert_eq!(from_pool, reference);
    }
}
