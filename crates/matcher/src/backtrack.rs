//! Backtracking subgraph-isomorphism search computing the output match set
//! `q(u_o, G)`.
//!
//! For each candidate `v` of the output node the engine decides whether at
//! least one injective, label/edge/literal-preserving embedding of the
//! query maps `u_o` to `v` (existence semantics — exactly what the match
//! set `q(G)` requires). The search orders query nodes greedily by
//! candidate-set size while staying connected to the already-matched part,
//! and drives each extension through the adjacency list of an
//! already-matched neighbor.

use crate::budget::{BudgetExceeded, BudgetKind, MatchBudget};
use crate::candidates::{candidates_from_pool_into, candidates_into, candidates_scan_into};
use fairsqg_graph::{EdgeLabelId, Graph, NodeBitset, NodeId};
use fairsqg_query::{ConcreteQuery, QNodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// Options controlling a match-set computation.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions<'a> {
    /// Restrict output-node candidates to this **sorted** pool. Used by
    /// `incVerify`: a refined instance's match set is contained in its
    /// parent's (Lemma 2 (2)), so only the parent's matches are re-checked.
    pub restrict_output: Option<&'a [NodeId]>,
    /// Compute candidate sets through the graph's sorted value index
    /// (default). Disable to force the naive label-population scan — the
    /// reference path used for A/B benchmarking.
    pub use_index: bool,
    /// External hard-stop flag, polled every [`STOP_POLL_STEPS`] extension
    /// steps *inside* the backtracking search. When it reads `true` the
    /// search aborts with [`BudgetKind::HardStop`] — the escape hatch for
    /// supervisors whose cooperative cancellation (checked only between
    /// verifications) cannot reach a verification wedged in a huge
    /// candidate product. `None` = never polled (zero cost).
    pub stop: Option<&'a AtomicBool>,
}

impl Default for MatchOptions<'_> {
    fn default() -> Self {
        Self {
            restrict_output: None,
            use_index: true,
            stop: None,
        }
    }
}

/// How many extension steps pass between hard-stop polls. Power of two so
/// the check compiles to a mask; small enough that escalation latency is
/// microseconds, large enough that the atomic load is free in the noise.
pub const STOP_POLL_STEPS: u64 = 1024;

/// An adjacency constraint between two query nodes, oriented from the point
/// of view of the node being extended.
#[derive(Debug, Clone, Copy)]
struct QConstraint {
    /// Position (in matching order) of the already-matched peer.
    peer_pos: usize,
    /// Edge label.
    label: EdgeLabelId,
    /// `true` if the template edge goes `extended -> peer`.
    outgoing: bool,
}

/// Reusable working memory for [`try_match_output_set_with`].
///
/// One verify call allocates candidate vectors, a matching order, a dense
/// membership bitset per large candidate set, and an assignment buffer —
/// then throws them all away. Under Lemma 2 refinement an evaluator issues
/// thousands of verify calls over the same template shape, so owning the
/// buffers in the caller turns that churn into `clear()`s. A fresh
/// `MatchScratch::default()` is always valid; results never depend on
/// what a previous call left behind (every buffer is cleared or fully
/// overwritten before use).
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Candidate-set buffer pool, one per active query node.
    cand: Vec<Vec<NodeId>>,
    /// Dense membership bitsets for large non-root candidate sets.
    bitsets: Vec<NodeBitset>,
    /// Matching order (indexes into the active-node list).
    order: Vec<usize>,
    /// Which active slots are already ordered.
    in_order: Vec<bool>,
    /// Partial embedding, indexed by order position.
    assignment: Vec<NodeId>,
}

/// Computes the match set `q(u_o, G)` of the output node, sorted ascending.
pub fn match_output_set(graph: &Graph, query: &ConcreteQuery, opts: MatchOptions) -> Vec<NodeId> {
    match try_match_output_set(graph, query, opts, &MatchBudget::UNLIMITED) {
        Ok(matches) => matches,
        Err(e) => unreachable!("unlimited budget tripped: {e}"),
    }
}

/// Like [`match_output_set`], but stops with a structured
/// [`BudgetExceeded`] as soon as `budget`'s candidate/step/match caps are
/// reached — the worst-case-exponential search can never OOM or livelock
/// past its caps.
pub fn try_match_output_set(
    graph: &Graph,
    query: &ConcreteQuery,
    opts: MatchOptions,
    budget: &MatchBudget,
) -> Result<Vec<NodeId>, BudgetExceeded> {
    try_match_output_set_with(graph, query, opts, budget, &mut MatchScratch::default())
}

/// Like [`try_match_output_set`], but works in caller-owned
/// [`MatchScratch`] buffers so repeated verify calls reuse allocations
/// instead of re-allocating per call. Results are identical.
pub fn try_match_output_set_with(
    graph: &Graph,
    query: &ConcreteQuery,
    opts: MatchOptions,
    budget: &MatchBudget,
    scratch: &mut MatchScratch,
) -> Result<Vec<NodeId>, BudgetExceeded> {
    let MatchScratch {
        cand: cand_pool,
        bitsets,
        order,
        in_order,
        assignment,
    } = scratch;
    let active: Vec<QNodeId> = query.active_nodes().collect();
    debug_assert!(active.contains(&query.output));

    // Degree requirements per active query node: a match must have at
    // least as many outgoing/incoming edges as the query node (sound
    // filter: embeddings are injective and edge-preserving).
    let degree_req = |u: QNodeId| -> (usize, usize) {
        let out = query.edges.iter().filter(|&&(s, _, _)| s == u).count();
        let inc = query.edges.iter().filter(|&&(_, d, _)| d == u).count();
        (out, inc)
    };

    // Candidate sets per active query node, computed into the scratch
    // buffer pool (one reusable allocation per active slot).
    if cand_pool.len() < active.len() {
        cand_pool.resize_with(active.len(), Vec::new);
    }
    let cand = &mut cand_pool[..active.len()];
    for (slot, &u) in active.iter().enumerate() {
        check_stop(opts.stop)?;
        let c = &mut cand[slot];
        let compute = if opts.use_index {
            candidates_into
        } else {
            candidates_scan_into
        };
        if u == query.output {
            match opts.restrict_output {
                Some(pool) => candidates_from_pool_into(graph, query, u, pool, c),
                None => compute(graph, query, u, c),
            }
        } else {
            compute(graph, query, u, c)
        }
        let (out_req, in_req) = degree_req(u);
        if out_req > 0 || in_req > 0 {
            c.retain(|&v| graph.out_degree(v) >= out_req && graph.in_degree(v) >= in_req);
        }
        if c.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(max) = budget.max_candidates {
            if c.len() as u64 > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Candidates,
                    limit: max,
                });
            }
        }
    }

    // Single-node query: the candidate set is the match set.
    if active.len() == 1 {
        let matches = cand[0].clone();
        if let Some(max) = budget.max_matches {
            if matches.len() as u64 > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Matches,
                    limit: max,
                });
            }
        }
        return Ok(matches);
    }

    // Greedy connected matching order starting from the output node.
    let pos_of = |u: QNodeId, order: &[usize]| -> Option<usize> {
        order.iter().position(|&i| active[i] == u)
    };
    let slot_of = |u: QNodeId| -> usize { active.iter().position(|&a| a == u).unwrap() };

    let out_slot = slot_of(query.output);
    order.clear();
    order.push(out_slot);
    in_order.clear();
    in_order.resize(active.len(), false);
    in_order[out_slot] = true;
    while order.len() < active.len() {
        // Pick the unmatched active node adjacent to the ordered prefix
        // with the fewest candidates.
        let mut best: Option<(usize, usize)> = None; // (slot, cand size)
        for (slot, &u) in active.iter().enumerate() {
            if in_order[slot] {
                continue;
            }
            let adjacent = query.edges.iter().any(|&(s, d, _)| {
                (s == u && in_order[slot_of(d)]) || (d == u && in_order[slot_of(s)])
            });
            if !adjacent {
                continue;
            }
            let size = cand[slot].len();
            if best.is_none_or(|(_, bs)| size < bs) {
                best = Some((slot, size));
            }
        }
        let (slot, _) = best.expect("active component is connected");
        in_order[slot] = true;
        order.push(slot);
    }

    // Constraints of each order position against earlier positions.
    let mut constraints: Vec<Vec<QConstraint>> = vec![Vec::new(); order.len()];
    for (pos, &slot) in order.iter().enumerate() {
        let u = active[slot];
        for &(s, d, l) in &query.edges {
            if s == u {
                if let Some(pp) = pos_of(d, &order[..pos]) {
                    constraints[pos].push(QConstraint {
                        peer_pos: pp,
                        label: l,
                        outgoing: true,
                    });
                }
            } else if d == u {
                if let Some(pp) = pos_of(s, &order[..pos]) {
                    constraints[pos].push(QConstraint {
                        peer_pos: pp,
                        label: l,
                        outgoing: false,
                    });
                }
            }
        }
        debug_assert!(pos == 0 || !constraints[pos].is_empty());
    }

    // Candidate sets reordered to matching order, with an O(1) dense
    // bitset membership test for large non-root sets (the innermost
    // extension loop probes membership once per driven neighbor). The
    // bitsets live in the scratch pool: `reset` keeps their word
    // allocations across calls.
    let mut bits_of: Vec<Option<usize>> = vec![None; order.len()];
    let mut bits_used = 0usize;
    for (pos, &slot) in order.iter().enumerate() {
        if pos > 0 && opts.use_index && cand[slot].len() >= BITSET_MIN_CANDIDATES {
            if bits_used == bitsets.len() {
                bitsets.push(NodeBitset::new(0));
            }
            let b = &mut bitsets[bits_used];
            b.reset(graph.node_count());
            for &v in &cand[slot] {
                b.insert(v);
            }
            bits_of[pos] = Some(bits_used);
            bits_used += 1;
        }
    }
    let cand_by_pos: Vec<&[NodeId]> = order.iter().map(|&slot| cand[slot].as_slice()).collect();
    let membership: Vec<Membership> = cand_by_pos
        .iter()
        .enumerate()
        .map(|(pos, &c)| match bits_of[pos] {
            Some(i) => Membership::Bits(&bitsets[i]),
            None => Membership::Sorted(c),
        })
        .collect();

    let mut result = Vec::new();
    assignment.clear();
    assignment.resize(order.len(), NodeId(0));
    let mut steps: u64 = 0;
    for &v in cand_by_pos[0] {
        check_stop(opts.stop)?;
        assignment[0] = v;
        if extend(
            graph,
            &membership,
            &constraints,
            assignment,
            1,
            &mut steps,
            budget,
            opts.stop,
        )? {
            result.push(v);
            if let Some(max) = budget.max_matches {
                if result.len() as u64 > max {
                    return Err(BudgetExceeded {
                        kind: BudgetKind::Matches,
                        limit: max,
                    });
                }
            }
        }
    }
    Ok(result)
}

/// Candidate sets at or above this size get a dense bitset for `O(1)`
/// membership probes; below it a binary search on the sorted slice wins
/// (no per-call bitset construction cost).
const BITSET_MIN_CANDIDATES: usize = 64;

/// Membership test over one position's candidate set.
enum Membership<'a> {
    Sorted(&'a [NodeId]),
    Bits(&'a NodeBitset),
}

impl Membership<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        match self {
            Membership::Sorted(s) => s.binary_search(&v).is_ok(),
            Membership::Bits(b) => b.contains(v),
        }
    }
}

/// Aborts with [`BudgetKind::HardStop`] when the external stop flag fired.
#[inline]
fn check_stop(stop: Option<&AtomicBool>) -> Result<(), BudgetExceeded> {
    match stop {
        Some(flag) if flag.load(Ordering::Acquire) => Err(BudgetExceeded {
            kind: BudgetKind::HardStop,
            limit: 0,
        }),
        _ => Ok(()),
    }
}

/// Tries to extend the partial embedding at `pos`; returns `Ok(true)` on
/// the first complete embedding, or [`BudgetExceeded`] once the step cap
/// is reached.
#[allow(clippy::too_many_arguments)]
fn extend(
    graph: &Graph,
    membership: &[Membership],
    constraints: &[Vec<QConstraint>],
    assignment: &mut [NodeId],
    pos: usize,
    steps: &mut u64,
    budget: &MatchBudget,
    stop: Option<&AtomicBool>,
) -> Result<bool, BudgetExceeded> {
    if pos == membership.len() {
        return Ok(true);
    }
    let cons = &constraints[pos];

    // Drive iteration through the constraint whose matched peer has the
    // smallest relevant adjacency list.
    let (drive, rest) = {
        let mut best = 0usize;
        let mut best_len = usize::MAX;
        for (i, c) in cons.iter().enumerate() {
            let w = assignment[c.peer_pos];
            // If the template edge is extended->peer, candidates are the
            // *in*-neighbors of w; otherwise its out-neighbors.
            let len = if c.outgoing {
                graph.in_degree(w)
            } else {
                graph.out_degree(w)
            };
            if len < best_len {
                best_len = len;
                best = i;
            }
        }
        (cons[best], best)
    };

    let w = assignment[drive.peer_pos];
    let neighbors = if drive.outgoing {
        graph.in_neighbors(w)
    } else {
        graph.out_neighbors(w)
    };
    'next: for a in neighbors {
        let v = a.to();
        if a.label() != drive.label {
            continue;
        }
        *steps += 1;
        if let Some(max) = budget.max_steps {
            if *steps > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Steps,
                    limit: max,
                });
            }
        }
        if (*steps).is_multiple_of(STOP_POLL_STEPS) {
            check_stop(stop)?;
        }
        // Injectivity.
        if assignment[..pos].contains(&v) {
            continue;
        }
        // Candidate membership (labels + literals pre-filtered).
        if !membership[pos].contains(v) {
            continue;
        }
        // Remaining adjacency constraints.
        for (i, c) in cons.iter().enumerate() {
            if i == rest {
                continue;
            }
            let peer = assignment[c.peer_pos];
            let ok = if c.outgoing {
                graph.has_edge(v, peer, c.label)
            } else {
                graph.has_edge(peer, v, c.label)
            };
            if !ok {
                continue 'next;
            }
        }
        assignment[pos] = v;
        if extend(
            graph,
            membership,
            constraints,
            assignment,
            pos + 1,
            steps,
            budget,
            stop,
        )? {
            return Ok(true);
        }
    }
    Ok(false)
}
