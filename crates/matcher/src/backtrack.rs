//! Backtracking subgraph-isomorphism search computing the output match set
//! `q(u_o, G)`.
//!
//! For each candidate `v` of the output node the engine decides whether at
//! least one injective, label/edge/literal-preserving embedding of the
//! query maps `u_o` to `v` (existence semantics — exactly what the match
//! set `q(G)` requires). On the optimized path the search runs a cached
//! cost-based matching order ([`MatchPlan`]) when one applies, prunes the
//! candidate space with one-hop semi-joins before backtracking, and
//! re-plans the order suffix mid-enumeration when per-position failure
//! counts show the static order misjudged selectivity. With
//! [`MatchOptions::optimize`] off it falls back to the fixed greedy
//! connected order (smallest actual candidate set first) with no pruning
//! — the A/B baseline. Either way each extension is driven through the
//! adjacency list of an already-matched neighbor, and results are
//! bit-identical: the output node is always position 0, so no ordering or
//! (sound) pruning decision can change which root candidates extend.

use crate::budget::{BudgetExceeded, BudgetKind, MatchBudget};
use crate::candidates::{candidates_from_pool_into, candidates_into, candidates_scan_into};
use crate::plan::MatchPlan;
use crate::stats;
use fairsqg_graph::{gallop_intersect, EdgeLabelId, Graph, NodeBitset, NodeId};
use fairsqg_query::{ConcreteQuery, QNodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// Options controlling a match-set computation.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions<'a> {
    /// Restrict output-node candidates to this **sorted** pool. Used by
    /// `incVerify`: a refined instance's match set is contained in its
    /// parent's (Lemma 2 (2)), so only the parent's matches are re-checked.
    pub restrict_output: Option<&'a [NodeId]>,
    /// Compute candidate sets through the graph's sorted value index
    /// (default). Disable to force the naive label-population scan — the
    /// reference path used for A/B benchmarking.
    pub use_index: bool,
    /// Run the cost-based order / semi-join pruning / adaptive re-plan
    /// machinery (default). Disable to reproduce the fixed greedy
    /// connected order with no pruning — the pre-optimizer baseline the
    /// `order` benchmark measures against. Results are bit-identical
    /// either way.
    pub optimize: bool,
    /// A pre-planned matching order (see
    /// [`plan_matching_order`](crate::plan_matching_order)), typically
    /// cached per `(template, graph epoch)` by the caller. Used only when
    /// [`optimize`](Self::optimize) is set and the plan
    /// [applies to](MatchPlan::applies_to) the concrete instance;
    /// otherwise the in-call greedy order runs. `None` = always greedy.
    pub plan: Option<&'a MatchPlan>,
    /// External hard-stop flag, polled every [`STOP_POLL_STEPS`] extension
    /// steps *inside* the backtracking search. When it reads `true` the
    /// search aborts with [`BudgetKind::HardStop`] — the escape hatch for
    /// supervisors whose cooperative cancellation (checked only between
    /// verifications) cannot reach a verification wedged in a huge
    /// candidate product. `None` = never polled (zero cost).
    pub stop: Option<&'a AtomicBool>,
}

impl Default for MatchOptions<'_> {
    fn default() -> Self {
        Self {
            restrict_output: None,
            use_index: true,
            optimize: true,
            plan: None,
            stop: None,
        }
    }
}

/// How many extension steps pass between hard-stop polls. Power of two so
/// the check compiles to a mask; small enough that escalation latency is
/// microseconds, large enough that the atomic load is free in the noise.
pub const STOP_POLL_STEPS: u64 = 1024;

/// Candidate sets at or below this size skip semi-join pruning: the
/// backtracker disposes of a handful of candidates faster than any
/// neighbor-image construction could.
const PRUNE_MIN_CANDIDATES: usize = 16;

/// A semi-join builds the neighbor image of the *source* side; it is
/// skipped when the source's total relevant adjacency exceeds
/// `PRUNE_COST_FACTOR * |target| + PRUNE_COST_SLACK` — past that, the
/// image costs more than the backtracking it could save.
const PRUNE_COST_FACTOR: usize = 2;
const PRUNE_COST_SLACK: usize = 64;

/// Memoized candidate sets kept per template node across verify calls.
/// Range variables take at most a handful of distinct values per node
/// (`max_values_per_range_var` caps the domain), so a small cap captures
/// effectively every binding while bounding scratch memory.
const CAND_MEMO_CAP: usize = 32;

/// A cached plan is used only while every node's actual candidate count
/// stays within this factor (plus [`PLAN_DRIFT_SLACK`]) of the plan-time
/// estimate. Refinement binds literals the plan never saw; once
/// selectivities drift past this band the in-call greedy order — which
/// sees the real sizes — is the better-informed choice.
const PLAN_DRIFT_FACTOR: u64 = 2;
const PLAN_DRIFT_SLACK: u64 = 16;

/// Total extension failures (across positions, since the last plan) that
/// arm an adaptive suffix re-plan at the next root-candidate boundary.
const REPLAN_FAIL_THRESHOLD: u64 = 64;

/// An armed re-plan only fires while failures average at least this many
/// per root candidate processed since the last plan — the signature of a
/// pathological order. Healthy orders backtrack a few times per root no
/// matter how well they are arranged; re-planning on absolute counts
/// alone thrashes dense workloads where nearly every root succeeds.
const REPLAN_FAILS_PER_ROOT: u64 = 8;

/// Re-plan attempts per match-set computation — mis-estimates are
/// corrected once or twice; past that the order is as informed as the
/// fail counters can make it.
const MAX_REPLANS: u32 = 4;

/// An adjacency constraint between two query nodes, oriented from the point
/// of view of the node being extended.
#[derive(Debug, Clone, Copy)]
struct QConstraint {
    /// Position (in matching order) of the already-matched peer.
    peer_pos: usize,
    /// Edge label.
    label: EdgeLabelId,
    /// `true` if the template edge goes `extended -> peer`.
    outgoing: bool,
}

/// Reusable working memory for [`try_match_output_set_with`].
///
/// One verify call allocates candidate vectors, a matching order, a dense
/// membership bitset per large candidate set, and an assignment buffer —
/// then throws them all away. Under Lemma 2 refinement an evaluator issues
/// thousands of verify calls over the same template shape, so owning the
/// buffers in the caller turns that churn into `clear()`s. A fresh
/// `MatchScratch::default()` is always valid; results never depend on
/// what a previous call left behind (every buffer is cleared or fully
/// overwritten before use).
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Candidate-set buffer pool, one per active query node.
    cand: Vec<Vec<NodeId>>,
    /// Dense membership bitsets for large non-root candidate sets.
    bitsets: Vec<NodeBitset>,
    /// Matching order (indexes into the active-node list).
    order: Vec<usize>,
    /// Which active slots are already ordered.
    in_order: Vec<bool>,
    /// Partial embedding, indexed by order position.
    assignment: Vec<NodeId>,
    /// Extension failures per order position since the last (re-)plan —
    /// the adaptive reordering signal.
    fails: Vec<u64>,
    /// Semi-join neighbor-image buffer.
    image: Vec<NodeId>,
    /// Candidate-set memo across verify calls (optimized path only):
    /// per template node, the degree-filtered candidate sets
    /// keyed by the node's label and bound literals. Sound because a
    /// candidate set depends on nothing else; under Lemma-2 refinement
    /// each node sees only a handful of distinct bindings, so thousands
    /// of verify calls collapse to memo copies.
    memo: Vec<Vec<MemoEntry>>,
    /// `Graph::uid` the memo was filled against. A mismatch clears the
    /// memo, so reusing one scratch across graphs stays correct.
    memo_graph: u64,
}

/// One memoized candidate set (see [`MatchScratch::memo`]).
#[derive(Debug)]
struct MemoEntry {
    label: fairsqg_graph::LabelId,
    literals: Vec<fairsqg_query::BoundLiteral>,
    /// The (out, in) degree requirement the set was filtered under —
    /// part of the key because edge variables change a node's active
    /// edges, and with them the degree filter.
    req: (usize, usize),
    cand: Vec<NodeId>,
    /// Dense membership bitset over `cand`, built lazily on the first
    /// memo hit that needs one (set large enough, not the root slot) and
    /// reused on every later hit — membership construction is the last
    /// per-call cost the memo can amortize. `None` until then.
    bits: Option<NodeBitset>,
}

/// Computes the match set `q(u_o, G)` of the output node, sorted ascending.
pub fn match_output_set(graph: &Graph, query: &ConcreteQuery, opts: MatchOptions) -> Vec<NodeId> {
    match try_match_output_set(graph, query, opts, &MatchBudget::UNLIMITED) {
        Ok(matches) => matches,
        Err(e) => unreachable!("unlimited budget tripped: {e}"),
    }
}

/// Like [`match_output_set`], but stops with a structured
/// [`BudgetExceeded`] as soon as `budget`'s candidate/step/match caps are
/// reached — the worst-case-exponential search can never OOM or livelock
/// past its caps.
pub fn try_match_output_set(
    graph: &Graph,
    query: &ConcreteQuery,
    opts: MatchOptions,
    budget: &MatchBudget,
) -> Result<Vec<NodeId>, BudgetExceeded> {
    try_match_output_set_with(graph, query, opts, budget, &mut MatchScratch::default())
}

/// Like [`try_match_output_set`], but works in caller-owned
/// [`MatchScratch`] buffers so repeated verify calls reuse allocations
/// instead of re-allocating per call. Results are identical.
pub fn try_match_output_set_with(
    graph: &Graph,
    query: &ConcreteQuery,
    opts: MatchOptions,
    budget: &MatchBudget,
    scratch: &mut MatchScratch,
) -> Result<Vec<NodeId>, BudgetExceeded> {
    let MatchScratch {
        cand: cand_pool,
        bitsets,
        order,
        in_order,
        assignment,
        fails,
        image,
        memo,
        memo_graph,
    } = scratch;
    if *memo_graph != graph.uid() {
        *memo_graph = graph.uid();
        memo.clear();
    }
    let active: Vec<QNodeId> = query.active_nodes().collect();
    debug_assert!(active.contains(&query.output));

    // Degree requirements per active query node: a match must have at
    // least as many outgoing/incoming edges as the query node (sound
    // filter: embeddings are injective and edge-preserving).
    let degree_req = |u: QNodeId| -> (usize, usize) {
        let out = query.edges.iter().filter(|&&(s, _, _)| s == u).count();
        let inc = query.edges.iter().filter(|&&(_, d, _)| d == u).count();
        (out, inc)
    };

    // Candidate sets per active query node, computed into the scratch
    // buffer pool (one reusable allocation per active slot). Construction
    // work is charged against the step budget (one step per candidate
    // kept) so a pathological template cannot burn unbounded time before
    // the first backtrack step.
    let mut steps: u64 = 0;
    if cand_pool.len() < active.len() {
        cand_pool.resize_with(active.len(), Vec::new);
    }
    let cand = &mut cand_pool[..active.len()];
    // Which memo entry (node index, entry index) each slot's candidate
    // set lives in — lets the membership phase reuse the entry's cached
    // bitset instead of rebuilding one per call.
    let mut memo_src: Vec<Option<(usize, usize)>> = vec![None; active.len()];
    for (slot, &u) in active.iter().enumerate() {
        check_stop(opts.stop)?;
        let c = &mut cand[slot];
        let node = &query.nodes[u.index()];
        // The memo only covers unrestricted sets: the output node under a
        // `restrict_output` pool sees a different pool per call.
        let memoable = opts.optimize && (u != query.output || opts.restrict_output.is_none());
        let (out_req, in_req) = degree_req(u);
        let hit = if memoable {
            memo.get(u.index()).and_then(|entries| {
                entries.iter().position(|e| {
                    e.label == node.label
                        && e.req == (out_req, in_req)
                        && e.literals == node.literals
                })
            })
        } else {
            None
        };
        if let Some(i) = hit {
            c.clear();
            c.extend_from_slice(&memo[u.index()][i].cand);
            memo_src[slot] = Some((u.index(), i));
            stats::count_cand_memo_hits();
        } else {
            let compute = if opts.use_index {
                candidates_into
            } else {
                candidates_scan_into
            };
            if u == query.output {
                match opts.restrict_output {
                    Some(pool) => candidates_from_pool_into(graph, query, u, pool, c),
                    None => compute(graph, query, u, c),
                }
            } else {
                compute(graph, query, u, c)
            }
            if out_req > 0 || in_req > 0 {
                c.retain(|&v| graph.out_degree(v) >= out_req && graph.in_degree(v) >= in_req);
            }
            if memoable {
                if memo.len() <= u.index() {
                    memo.resize_with(u.index() + 1, Vec::new);
                }
                let entries = &mut memo[u.index()];
                if entries.len() < CAND_MEMO_CAP {
                    entries.push(MemoEntry {
                        label: node.label,
                        literals: node.literals.clone(),
                        req: (out_req, in_req),
                        cand: c.clone(),
                        bits: None,
                    });
                    memo_src[slot] = Some((u.index(), entries.len() - 1));
                }
            }
        }
        if c.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(max) = budget.max_candidates {
            if c.len() as u64 > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Candidates,
                    limit: max,
                });
            }
        }
        charge_steps(&mut steps, c.len() as u64, budget)?;
    }

    // Single-node query: the candidate set is the match set.
    if active.len() == 1 {
        let matches = cand[0].clone();
        if let Some(max) = budget.max_matches {
            if matches.len() as u64 > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Matches,
                    limit: max,
                });
            }
        }
        return Ok(matches);
    }

    // One-hop semi-join pruning of the root set (optimized path): the
    // output node's candidates are intersected with the neighbor image of
    // each constrained peer's candidate set — every root candidate
    // removed here skips a whole existence search. Sound — in any
    // embedding the root's image must have the template edge to its
    // peer's image, which lies in the peer's candidate set — so pruning
    // never removes a true match. Peer membership bitsets cached in the
    // memo make the probe-side kernel O(1) per adjacency entry.
    if opts.optimize {
        let probe_bits: Vec<Option<&NodeBitset>> = (0..active.len())
            .map(|s| memo_src[s].and_then(|(ui, ei)| memo[ui][ei].bits.as_ref()))
            .collect();
        if !prune_root(
            graph,
            query,
            &active,
            cand,
            &probe_bits,
            image,
            &mut steps,
            budget,
            opts.stop,
        )? {
            return Ok(Vec::new());
        }
    }

    let slot_of = |u: QNodeId| -> usize { active.iter().position(|&a| a == u).unwrap() };

    // Matching order: a cached cost-based plan when one applies, else the
    // greedy connected order by smallest (now pruned) candidate set —
    // with a query-degree tiebreak on the optimized path only, so the
    // un-optimized baseline stays byte-for-byte the old behavior.
    order.clear();
    in_order.clear();
    in_order.resize(active.len(), false);
    // A plan is trusted only while the actual candidate sizes stay within
    // [`PLAN_DRIFT_FACTOR`] of its estimates: refinement binds literals
    // the plan never saw, and once selectivities drift the in-call greedy
    // order (which sees the real sizes) is the better-informed choice.
    let drifted = |p: &&MatchPlan| -> bool {
        p.order().iter().zip(p.estimates()).any(|(&u, &est)| {
            let actual = cand[slot_of(u)].len() as u64;
            actual * PLAN_DRIFT_FACTOR + PLAN_DRIFT_SLACK < est
                || est * PLAN_DRIFT_FACTOR + PLAN_DRIFT_SLACK < actual
        })
    };
    let planned = if opts.optimize {
        opts.plan
            .filter(|p| p.applies_to(query, &active) && !drifted(p))
    } else {
        None
    };
    if let Some(plan) = planned {
        for &u in plan.order() {
            let slot = slot_of(u);
            order.push(slot);
            in_order[slot] = true;
        }
    } else {
        let qdeg = |u: QNodeId| -> usize {
            query
                .edges
                .iter()
                .filter(|&&(s, d, _)| s == u || d == u)
                .count()
        };
        let out_slot = slot_of(query.output);
        order.push(out_slot);
        in_order[out_slot] = true;
        while order.len() < active.len() {
            // Pick the unmatched active node adjacent to the ordered
            // prefix with the fewest candidates.
            let mut best: Option<(usize, usize, usize)> = None; // (slot, cand size, degree)
            for (slot, &u) in active.iter().enumerate() {
                if in_order[slot] {
                    continue;
                }
                let adjacent = query.edges.iter().any(|&(s, d, _)| {
                    (s == u && in_order[slot_of(d)]) || (d == u && in_order[slot_of(s)])
                });
                if !adjacent {
                    continue;
                }
                let size = cand[slot].len();
                let better = match best {
                    None => true,
                    Some((_, bs, bd)) => {
                        if opts.optimize {
                            size < bs || (size == bs && qdeg(u) > bd)
                        } else {
                            size < bs
                        }
                    }
                };
                if better {
                    let dg = if opts.optimize { qdeg(u) } else { 0 };
                    best = Some((slot, size, dg));
                }
            }
            let (slot, _, _) = best.expect("active component is connected");
            in_order[slot] = true;
            order.push(slot);
        }
    }

    // Membership tests are keyed by *slot* (not position) so an adaptive
    // re-plan can permute the order without rebuilding bitsets: an O(1)
    // dense bitset for large non-root sets (the innermost extension loop
    // probes membership once per driven neighbor), binary search below
    // that. The bitsets live in the scratch pool: `reset` keeps their
    // word allocations across calls.
    let root_slot = order[0];
    // Membership source per large slot: the memo entry's cached bitset
    // when the slot's set came from the memo and survived pruning
    // untouched (equal length ⟹ identical set, pruning only removes), a
    // per-call scratch bitset otherwise. Memoized bitsets are built
    // lazily on the first call that needs one, then reused — the last
    // per-call construction cost the memo can amortize.
    #[derive(Clone, Copy)]
    enum BitsSrc {
        Memo(usize, usize),
        Scratch(usize),
        Search,
    }
    let mut bits_of_slot: Vec<BitsSrc> = vec![BitsSrc::Search; active.len()];
    let mut bits_used = 0usize;
    for (slot, c) in cand.iter().enumerate() {
        if slot == root_slot || !opts.use_index || c.len() < BITSET_MIN_CANDIDATES {
            continue;
        }
        if let Some((ui, ei)) = memo_src[slot] {
            let e = &mut memo[ui][ei];
            if e.cand.len() == c.len() {
                if e.bits.is_none() {
                    e.bits = Some(NodeBitset::from_nodes(
                        graph.node_count(),
                        c.iter().copied(),
                    ));
                }
                bits_of_slot[slot] = BitsSrc::Memo(ui, ei);
                continue;
            }
        }
        if bits_used == bitsets.len() {
            bitsets.push(NodeBitset::new(0));
        }
        let b = &mut bitsets[bits_used];
        b.reset(graph.node_count());
        for &v in c {
            b.insert(v);
        }
        bits_of_slot[slot] = BitsSrc::Scratch(bits_used);
        bits_used += 1;
    }
    let membership_by_slot: Vec<Membership> = cand
        .iter()
        .enumerate()
        .map(|(slot, c)| match bits_of_slot[slot] {
            BitsSrc::Memo(ui, ei) => Membership::Bits(memo[ui][ei].bits.as_ref().unwrap()),
            BitsSrc::Scratch(i) => Membership::Bits(&bitsets[i]),
            BitsSrc::Search => Membership::Sorted(c.as_slice()),
        })
        .collect();

    // Per-position views of the current order, rebuilt on re-plan.
    let mut membership: Vec<Membership> = order.iter().map(|&s| membership_by_slot[s]).collect();
    let mut constraints: Vec<Vec<QConstraint>> = vec![Vec::new(); order.len()];
    build_constraints(query, &active, order, &mut constraints);

    let mut result = Vec::new();
    assignment.clear();
    assignment.resize(order.len(), NodeId(0));
    fails.clear();
    fails.resize(order.len(), 0);
    let mut replans_attempted: u32 = 0;
    let mut roots_since_plan: u64 = 0;
    let root_cand = cand[root_slot].as_slice();
    for &v in root_cand {
        check_stop(opts.stop)?;
        // Adaptive reordering: when accumulated extension failures show
        // the static order misjudged selectivity, re-plan the suffix
        // fail-heaviest-first at this root-candidate boundary (each root
        // candidate is an independent existence check, so the order may
        // change between them without affecting results). The trigger is
        // the failure *rate* per root processed, not the absolute count:
        // a healthy order still backtracks a handful of times per root
        // (deep positions accumulate failures by sheer try volume), and
        // only a pathological order fails tens of times per root —
        // re-planning on absolute counts thrashes dense workloads where
        // nearly every root succeeds.
        if opts.optimize && replans_attempted < MAX_REPLANS && order.len() > 2 {
            let total: u64 = fails.iter().sum();
            if total >= REPLAN_FAIL_THRESHOLD && total >= REPLAN_FAILS_PER_ROOT * roots_since_plan {
                replans_attempted += 1;
                if replan_suffix(query, &active, cand, order, fails) {
                    stats::count_order_replans();
                    for (pos, &slot) in order.iter().enumerate() {
                        membership[pos] = membership_by_slot[slot];
                    }
                    build_constraints(query, &active, order, &mut constraints);
                }
                fails.fill(0);
                roots_since_plan = 0;
            }
        }
        roots_since_plan += 1;
        assignment[0] = v;
        if extend(
            graph,
            &membership,
            &constraints,
            assignment,
            1,
            &mut steps,
            budget,
            opts.stop,
            fails,
        )? {
            result.push(v);
            if let Some(max) = budget.max_matches {
                if result.len() as u64 > max {
                    return Err(BudgetExceeded {
                        kind: BudgetKind::Matches,
                        limit: max,
                    });
                }
            }
        }
    }
    Ok(result)
}

/// Candidate sets at or above this size get a dense bitset for `O(1)`
/// membership probes; below it a binary search on the sorted slice wins
/// (no per-call bitset construction cost).
const BITSET_MIN_CANDIDATES: usize = 64;

/// Membership test over one position's candidate set.
#[derive(Clone, Copy)]
enum Membership<'a> {
    Sorted(&'a [NodeId]),
    Bits(&'a NodeBitset),
}

impl Membership<'_> {
    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        match self {
            Membership::Sorted(s) => s.binary_search(&v).is_ok(),
            Membership::Bits(b) => b.contains(v),
        }
    }
}

/// Adds `amount` to the step counter, tripping [`BudgetKind::Steps`] past
/// the cap. Charged for backtracking extensions *and* candidate
/// construction / pruning work, so preprocessing is bounded too.
#[inline]
fn charge_steps(steps: &mut u64, amount: u64, budget: &MatchBudget) -> Result<(), BudgetExceeded> {
    *steps += amount;
    if let Some(max) = budget.max_steps {
        if *steps > max {
            return Err(BudgetExceeded {
                kind: BudgetKind::Steps,
                limit: max,
            });
        }
    }
    Ok(())
}

/// Aborts with [`BudgetKind::HardStop`] when the external stop flag fired.
#[inline]
fn check_stop(stop: Option<&AtomicBool>) -> Result<(), BudgetExceeded> {
    match stop {
        Some(flag) if flag.load(Ordering::Acquire) => Err(BudgetExceeded {
            kind: BudgetKind::HardStop,
            limit: 0,
        }),
        _ => Ok(()),
    }
}

/// Constraints of each order position against earlier positions.
fn build_constraints(
    query: &ConcreteQuery,
    active: &[QNodeId],
    order: &[usize],
    constraints: &mut Vec<Vec<QConstraint>>,
) {
    let pos_of = |u: QNodeId, prefix: &[usize]| -> Option<usize> {
        prefix.iter().position(|&i| active[i] == u)
    };
    constraints.resize(order.len(), Vec::new());
    for (pos, &slot) in order.iter().enumerate() {
        let u = active[slot];
        let cons = &mut constraints[pos];
        cons.clear();
        for &(s, d, l) in &query.edges {
            if s == u {
                if let Some(pp) = pos_of(d, &order[..pos]) {
                    cons.push(QConstraint {
                        peer_pos: pp,
                        label: l,
                        outgoing: true,
                    });
                }
            } else if d == u {
                if let Some(pp) = pos_of(s, &order[..pos]) {
                    cons.push(QConstraint {
                        peer_pos: pp,
                        label: l,
                        outgoing: false,
                    });
                }
            }
        }
        debug_assert!(pos == 0 || !cons.is_empty());
    }
}

/// One-hop semi-join pass shrinking the **root** (output) candidate set:
/// for every template edge incident to the output node, root candidates
/// without a supporting labeled neighbor in the peer's candidate set are
/// dropped. Only the root set is worth shrinking — the backtracker
/// iterates root candidates outermost, so every candidate removed here
/// skips a whole existence search, while non-root sets act purely as
/// O(1) membership filters during adjacency-driven extension.
///
/// Two kernels, chosen per edge by cost: a small peer set is expanded
/// into its sorted labeled neighbor image and gallop-intersected with the
/// root set ([`semi_join`]); a large peer set is instead probed per root
/// candidate through the root's own adjacency, using the peer's memoized
/// membership bitset when one exists (O(1) per adjacency entry, binary
/// search otherwise). Tiny root sets skip pruning entirely — the
/// backtracker disposes of a handful of candidates faster than any set
/// algebra. Returns `Ok(false)` when the root set empties (no embedding
/// can exist). All adjacency entries visited are charged against the
/// step budget.
#[allow(clippy::too_many_arguments)]
fn prune_root(
    graph: &Graph,
    query: &ConcreteQuery,
    active: &[QNodeId],
    cand: &mut [Vec<NodeId>],
    probe_bits: &[Option<&NodeBitset>],
    image: &mut Vec<NodeId>,
    steps: &mut u64,
    budget: &MatchBudget,
    stop: Option<&AtomicBool>,
) -> Result<bool, BudgetExceeded> {
    let slot_of = |u: QNodeId| -> usize { active.iter().position(|&a| a == u).unwrap() };
    let root = slot_of(query.output);
    for &(s, d, l) in &query.edges {
        if cand[root].len() <= PRUNE_MIN_CANDIDATES {
            return Ok(true);
        }
        check_stop(stop)?;
        let (ss, ds) = (slot_of(s), slot_of(d));
        if ss == ds || (ss != root && ds != root) {
            continue;
        }
        // From the root's point of view: does the edge leave the root?
        let (peer, root_outgoing) = if ss == root { (ds, true) } else { (ss, false) };
        if cand[peer].len() * PRUNE_COST_FACTOR <= cand[root].len() {
            // Small peer: build its labeled neighbor image and
            // gallop-intersect with the root set. The image follows the
            // edge towards the root, so the peer is the semi-join source.
            if !semi_join(
                graph,
                cand,
                peer,
                root,
                l,
                !root_outgoing,
                image,
                steps,
                budget,
            )? {
                return Ok(false);
            }
        } else {
            // Large peer: probe each root candidate's own adjacency for a
            // supporting neighbor in the peer set.
            let mut rootset = std::mem::take(&mut cand[root]);
            let before = rootset.len();
            let mut visited = 0u64;
            {
                let peer_set = cand[peer].as_slice();
                let bits = probe_bits[peer];
                rootset.retain(|&v| {
                    let neighbors = if root_outgoing {
                        graph.out_neighbors(v)
                    } else {
                        graph.in_neighbors(v)
                    };
                    visited += neighbors.len() as u64;
                    neighbors.iter().any(|a| {
                        a.label() == l
                            && match bits {
                                Some(b) => b.contains(a.to()),
                                None => peer_set.binary_search(&a.to()).is_ok(),
                            }
                    })
                });
            }
            stats::count_pruned_candidates((before - rootset.len()) as u64);
            cand[root] = rootset;
            charge_steps(steps, visited, budget)?;
            if cand[root].is_empty() {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Intersects `cand[tgt]` with the image of `cand[src]` through its
/// `label`-edges (`src_outgoing` picks the direction). Returns `Ok(false)`
/// when the target empties. Skips itself (leaving the target untouched —
/// always sound) when the target is tiny or the image too expensive.
#[allow(clippy::too_many_arguments)]
fn semi_join(
    graph: &Graph,
    cand: &mut [Vec<NodeId>],
    src: usize,
    tgt: usize,
    label: EdgeLabelId,
    src_outgoing: bool,
    image: &mut Vec<NodeId>,
    steps: &mut u64,
    budget: &MatchBudget,
) -> Result<bool, BudgetExceeded> {
    let target_len = cand[tgt].len();
    if target_len <= PRUNE_MIN_CANDIDATES {
        return Ok(true);
    }
    let cost_cap = PRUNE_COST_FACTOR * target_len + PRUNE_COST_SLACK;
    image.clear();
    let mut visited = 0usize;
    for &x in &cand[src] {
        let neighbors = if src_outgoing {
            graph.out_neighbors(x)
        } else {
            graph.in_neighbors(x)
        };
        visited += neighbors.len();
        if visited > cost_cap {
            charge_steps(steps, visited as u64, budget)?;
            return Ok(true);
        }
        for a in neighbors {
            if a.label() == label {
                image.push(a.to());
            }
        }
    }
    charge_steps(steps, visited as u64, budget)?;
    image.sort_unstable();
    image.dedup();
    let kept = gallop_intersect(&cand[tgt], image);
    let removed = target_len - kept.len();
    stats::count_pruned_candidates(removed as u64);
    cand[tgt] = kept;
    Ok(!cand[tgt].is_empty())
}

/// Re-plans the order suffix (positions `1..`) greedily by descending
/// accumulated failures, breaking ties by smaller candidate set then
/// lower slot — still connectivity-constrained. Returns whether the
/// order actually changed.
fn replan_suffix(
    query: &ConcreteQuery,
    active: &[QNodeId],
    cand: &[Vec<NodeId>],
    order: &mut [usize],
    fails: &[u64],
) -> bool {
    let mut fail_by_slot = vec![0u64; active.len()];
    for (pos, &slot) in order.iter().enumerate() {
        fail_by_slot[slot] = fails[pos];
    }
    let mut new_order = Vec::with_capacity(order.len());
    let mut used = vec![false; active.len()];
    new_order.push(order[0]);
    used[order[0]] = true;
    while new_order.len() < order.len() {
        let mut best: Option<(usize, u64, usize)> = None; // (slot, fails, cand size)
        for (slot, &u) in active.iter().enumerate() {
            if used[slot] {
                continue;
            }
            let adjacent = query.edges.iter().any(|&(s, d, _)| {
                (s == u && used[active.iter().position(|&a| a == d).unwrap()])
                    || (d == u && used[active.iter().position(|&a| a == s).unwrap()])
            });
            if !adjacent {
                continue;
            }
            let (f, cl) = (fail_by_slot[slot], cand[slot].len());
            let better = match best {
                None => true,
                Some((_, bf, bcl)) => f > bf || (f == bf && cl < bcl),
            };
            if better {
                best = Some((slot, f, cl));
            }
        }
        let (slot, _, _) = best.expect("active component is connected");
        used[slot] = true;
        new_order.push(slot);
    }
    if new_order[..] == order[..] {
        false
    } else {
        order.copy_from_slice(&new_order);
        true
    }
}

/// Tries to extend the partial embedding at `pos`; returns `Ok(true)` on
/// the first complete embedding, or [`BudgetExceeded`] once the step cap
/// is reached. A fruitless extension bumps `fails[pos]` — the adaptive
/// re-plan signal.
#[allow(clippy::too_many_arguments)]
fn extend(
    graph: &Graph,
    membership: &[Membership],
    constraints: &[Vec<QConstraint>],
    assignment: &mut [NodeId],
    pos: usize,
    steps: &mut u64,
    budget: &MatchBudget,
    stop: Option<&AtomicBool>,
    fails: &mut [u64],
) -> Result<bool, BudgetExceeded> {
    if pos == membership.len() {
        return Ok(true);
    }
    let cons = &constraints[pos];

    // Drive iteration through the constraint whose matched peer has the
    // smallest relevant adjacency list.
    let (drive, rest) = {
        let mut best = 0usize;
        let mut best_len = usize::MAX;
        for (i, c) in cons.iter().enumerate() {
            let w = assignment[c.peer_pos];
            // If the template edge is extended->peer, candidates are the
            // *in*-neighbors of w; otherwise its out-neighbors.
            let len = if c.outgoing {
                graph.in_degree(w)
            } else {
                graph.out_degree(w)
            };
            if len < best_len {
                best_len = len;
                best = i;
            }
        }
        (cons[best], best)
    };

    let w = assignment[drive.peer_pos];
    let neighbors = if drive.outgoing {
        graph.in_neighbors(w)
    } else {
        graph.out_neighbors(w)
    };
    'next: for a in neighbors {
        let v = a.to();
        if a.label() != drive.label {
            continue;
        }
        *steps += 1;
        if let Some(max) = budget.max_steps {
            if *steps > max {
                return Err(BudgetExceeded {
                    kind: BudgetKind::Steps,
                    limit: max,
                });
            }
        }
        if (*steps).is_multiple_of(STOP_POLL_STEPS) {
            check_stop(stop)?;
        }
        // Injectivity.
        if assignment[..pos].contains(&v) {
            continue;
        }
        // Candidate membership (labels + literals pre-filtered).
        if !membership[pos].contains(v) {
            continue;
        }
        // Remaining adjacency constraints.
        for (i, c) in cons.iter().enumerate() {
            if i == rest {
                continue;
            }
            let peer = assignment[c.peer_pos];
            let ok = if c.outgoing {
                graph.has_edge(v, peer, c.label)
            } else {
                graph.has_edge(peer, v, c.label)
            };
            if !ok {
                continue 'next;
            }
        }
        assignment[pos] = v;
        if extend(
            graph,
            membership,
            constraints,
            assignment,
            pos + 1,
            steps,
            budget,
            stop,
            fails,
        )? {
            return Ok(true);
        }
    }
    fails[pos] += 1;
    Ok(false)
}
