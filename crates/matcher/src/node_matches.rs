//! Match sets of arbitrary query nodes and embedding counting.
//!
//! The paper defines `q(u, G)` — the match set of *any* query node `u`, not
//! just the output node (Table I). This module generalizes the engine:
//! `match_node_set` computes `q(u, G)` for any active node, and
//! `count_embeddings` counts complete embeddings (with a cap), which is
//! useful for selectivity estimation and workload characterization.

use crate::backtrack::{match_output_set, MatchOptions};
use fairsqg_graph::{Graph, NodeId};
use fairsqg_query::{ConcreteQuery, QNodeId};

/// Computes the match set `q(u, G)` of any active query node `u`.
///
/// Implemented by re-rooting: the engine computes output match sets, and
/// `q(u, G)` is exactly the output match set of the same query with `u`
/// designated as output (matching is defined on whole embeddings, so the
/// choice of output only selects which coordinate is reported).
///
/// # Panics
/// Panics if `u` is not active in `query` (a node outside `u_o`'s
/// component never matches anything meaningful for the instance).
pub fn match_node_set(graph: &Graph, query: &ConcreteQuery, u: QNodeId) -> Vec<NodeId> {
    assert!(
        query.active[u.index()],
        "query node {u:?} is not in the output component"
    );
    if u == query.output {
        return match_output_set(graph, query, MatchOptions::default());
    }
    let rerooted = ConcreteQuery {
        nodes: query.nodes.clone(),
        active: query.active.clone(),
        edges: query.edges.clone(),
        output: u,
    };
    match_output_set(graph, &rerooted, MatchOptions::default())
}

/// Counts complete embeddings of `query` into `graph`, stopping at `cap`
/// (0 = unlimited). Embedding counts grow combinatorially; the cap keeps
/// selectivity probes cheap.
pub fn count_embeddings(graph: &Graph, query: &ConcreteQuery, cap: usize) -> usize {
    let active: Vec<QNodeId> = query.active_nodes().collect();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(active.len());
    let mut count = 0usize;
    count_rec(graph, query, &active, &mut assignment, cap, &mut count);
    count
}

fn count_rec(
    graph: &Graph,
    query: &ConcreteQuery,
    active: &[QNodeId],
    assignment: &mut Vec<NodeId>,
    cap: usize,
    count: &mut usize,
) {
    if cap != 0 && *count >= cap {
        return;
    }
    let pos = assignment.len();
    if pos == active.len() {
        *count += 1;
        return;
    }
    let u = active[pos];
    let qn = &query.nodes[u.index()];
    'cand: for &v in graph.nodes_with_label(qn.label) {
        if assignment.contains(&v) {
            continue;
        }
        if !crate::candidates::satisfies_literals(graph, v, &qn.literals) {
            continue;
        }
        // Check all edges between u and already-assigned nodes.
        for &(s, d, l) in &query.edges {
            let (qs, qd) = (s, d);
            let spos = active.iter().position(|&a| a == qs).unwrap();
            let dpos = active.iter().position(|&a| a == qd).unwrap();
            if qs == u && dpos < pos && !graph.has_edge(v, assignment[dpos], l) {
                continue 'cand;
            }
            if qd == u && spos < pos && !graph.has_edge(assignment[spos], v, l) {
                continue 'cand;
            }
        }
        assignment.push(v);
        count_rec(graph, query, active, assignment, cap, count);
        assignment.pop();
        if cap != 0 && *count >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::{AttrValue, GraphBuilder};
    use fairsqg_query::{Instantiation, RefinementDomains, TemplateBuilder};

    fn setup() -> (Graph, ConcreteQuery) {
        let mut b = GraphBuilder::new();
        let d1 = b.add_named_node("director", &[("g", AttrValue::Int(0))]);
        let d2 = b.add_named_node("director", &[("g", AttrValue::Int(1))]);
        let u1 = b.add_named_node("user", &[]);
        let u2 = b.add_named_node("user", &[]);
        b.add_named_edge(u1, d1, "rec");
        b.add_named_edge(u1, d2, "rec");
        b.add_named_edge(u2, d2, "rec");
        let g = b.finish();
        let s = g.schema();
        let mut tb = TemplateBuilder::new();
        let q0 = tb.node(s.find_node_label("director").unwrap());
        let q1 = tb.node(s.find_node_label("user").unwrap());
        tb.edge(q1, q0, s.find_edge_label("rec").unwrap());
        let t = tb.finish(q0).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(vec![]));
        (g, q)
    }

    #[test]
    fn node_match_sets_for_all_query_nodes() {
        let (g, q) = setup();
        let outputs = match_node_set(&g, &q, QNodeId(0));
        assert_eq!(outputs.len(), 2); // both directors are recommended
        let recommenders = match_node_set(&g, &q, QNodeId(1));
        assert_eq!(recommenders.len(), 2); // both users recommend someone
    }

    #[test]
    fn embedding_count_and_cap() {
        let (g, q) = setup();
        // Embeddings: (d1,u1), (d2,u1), (d2,u2) = 3.
        assert_eq!(count_embeddings(&g, &q, 0), 3);
        assert_eq!(count_embeddings(&g, &q, 2), 2);
        assert_eq!(count_embeddings(&g, &q, 100), 3);
    }

    #[test]
    #[should_panic(expected = "not in the output component")]
    fn inactive_node_rejected() {
        let mut b = GraphBuilder::new();
        let d = b.add_named_node("director", &[]);
        let u = b.add_named_node("user", &[]);
        b.add_named_edge(u, d, "rec");
        let g = b.finish();
        let s = g.schema();
        let mut tb = TemplateBuilder::new();
        let q0 = tb.node(s.find_node_label("director").unwrap());
        let q1 = tb.node(s.find_node_label("user").unwrap());
        tb.optional_edge(q1, q0, s.find_edge_label("rec").unwrap());
        let t = tb.finish(q0).unwrap();
        let dm = RefinementDomains::with_range_values(&t, vec![]);
        // Root: optional edge off, u1 inactive.
        let q = ConcreteQuery::materialize(&t, &dm, &Instantiation::root(&dm));
        match_node_set(&g, &q, QNodeId(1));
    }
}
