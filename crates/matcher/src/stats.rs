//! Thread-local hot-path counters for the matcher.
//!
//! Candidate computation is driven through free functions, so the counters
//! live in a thread-local cell rather than threading a `&mut` context
//! through every call site. Each worker thread accumulates its own
//! counters; callers snapshot-and-reset around a unit of work with
//! [`take_stats`] and merge the deltas into their own accounting (e.g.
//! `GenStats` in `fairsqg-algo`).

use std::cell::Cell;

/// Snapshot of the matcher's hot-path counters on the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatcherStats {
    /// Candidate sets served from the sorted `(label, attribute)` value
    /// index (binary-searched range slices).
    pub index_candidates: u64,
    /// Candidate sets computed by the naive label-population scan — the
    /// reference path, plus hybrid fallbacks for non-selective literals.
    pub scan_candidates: u64,
    /// Indexed computations that fell back to the scan because the most
    /// selective literal still covered most of the label population.
    pub scan_fallbacks: u64,
    /// Candidate sets restricted to an `incVerify` pool (the parent's
    /// output match set) instead of the full label population.
    pub pool_restrictions: u64,
    /// Postings shards skipped wholesale by partition metadata during
    /// indexed range evaluation (their `[min, max]` envelope lay entirely
    /// on one side of the literal's boundary).
    pub shard_skips: u64,
    /// Cost-based matching orders planned from index cardinality
    /// estimates (once per template shape, amortized by plan caching).
    pub order_planned: u64,
    /// Mid-enumeration suffix re-plans triggered by the adaptive
    /// fail-count threshold (QuickSI/RI-style reordering).
    pub order_replans: u64,
    /// Sum of estimated candidate cardinalities over all planned orders
    /// (the cost model's inputs, for observing estimate magnitudes).
    pub est_candidates: u64,
    /// Candidates removed from per-node candidate sets by the one-hop
    /// semi-join pruning pass before backtracking.
    pub pruned_candidates: u64,
    /// Candidate sets served from the cross-call memo (same node label
    /// and bound literals seen before on this graph) instead of being
    /// recomputed from the index or a scan.
    pub cand_memo_hits: u64,
}

impl MatcherStats {
    /// Field-wise sum, for merging per-thread deltas.
    pub fn merge(&mut self, other: MatcherStats) {
        self.index_candidates += other.index_candidates;
        self.scan_candidates += other.scan_candidates;
        self.scan_fallbacks += other.scan_fallbacks;
        self.pool_restrictions += other.pool_restrictions;
        self.shard_skips += other.shard_skips;
        self.order_planned += other.order_planned;
        self.order_replans += other.order_replans;
        self.est_candidates += other.est_candidates;
        self.pruned_candidates += other.pruned_candidates;
        self.cand_memo_hits += other.cand_memo_hits;
    }

    /// Field-wise difference from an earlier snapshot of the same
    /// thread's counters (counters are monotone, so saturation only
    /// guards against mixing snapshots across threads).
    pub fn delta_since(&self, baseline: MatcherStats) -> MatcherStats {
        MatcherStats {
            index_candidates: self
                .index_candidates
                .saturating_sub(baseline.index_candidates),
            scan_candidates: self
                .scan_candidates
                .saturating_sub(baseline.scan_candidates),
            scan_fallbacks: self.scan_fallbacks.saturating_sub(baseline.scan_fallbacks),
            pool_restrictions: self
                .pool_restrictions
                .saturating_sub(baseline.pool_restrictions),
            shard_skips: self.shard_skips.saturating_sub(baseline.shard_skips),
            order_planned: self.order_planned.saturating_sub(baseline.order_planned),
            order_replans: self.order_replans.saturating_sub(baseline.order_replans),
            est_candidates: self.est_candidates.saturating_sub(baseline.est_candidates),
            pruned_candidates: self
                .pruned_candidates
                .saturating_sub(baseline.pruned_candidates),
            cand_memo_hits: self.cand_memo_hits.saturating_sub(baseline.cand_memo_hits),
        }
    }
}

thread_local! {
    static INDEX_CANDIDATES: Cell<u64> = const { Cell::new(0) };
    static SCAN_CANDIDATES: Cell<u64> = const { Cell::new(0) };
    static SCAN_FALLBACKS: Cell<u64> = const { Cell::new(0) };
    static POOL_RESTRICTIONS: Cell<u64> = const { Cell::new(0) };
    static SHARD_SKIPS: Cell<u64> = const { Cell::new(0) };
    static ORDER_PLANNED: Cell<u64> = const { Cell::new(0) };
    static ORDER_REPLANS: Cell<u64> = const { Cell::new(0) };
    static EST_CANDIDATES: Cell<u64> = const { Cell::new(0) };
    static PRUNED_CANDIDATES: Cell<u64> = const { Cell::new(0) };
    static CAND_MEMO_HITS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
pub(crate) fn count_index_candidates() {
    INDEX_CANDIDATES.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_scan_candidates() {
    SCAN_CANDIDATES.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_scan_fallback() {
    SCAN_FALLBACKS.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_pool_restriction() {
    POOL_RESTRICTIONS.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_shard_skips(n: u64) {
    if n > 0 {
        SHARD_SKIPS.with(|c| c.set(c.get() + n));
    }
}

#[inline]
pub(crate) fn count_order_planned() {
    ORDER_PLANNED.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_order_replans() {
    ORDER_REPLANS.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_est_candidates(n: u64) {
    if n > 0 {
        EST_CANDIDATES.with(|c| c.set(c.get() + n));
    }
}

#[inline]
pub(crate) fn count_pruned_candidates(n: u64) {
    if n > 0 {
        PRUNED_CANDIDATES.with(|c| c.set(c.get() + n));
    }
}

#[inline]
pub(crate) fn count_cand_memo_hits() {
    CAND_MEMO_HITS.with(|c| c.set(c.get() + 1));
}

/// Current thread's counters without resetting them.
pub fn matcher_stats() -> MatcherStats {
    MatcherStats {
        index_candidates: INDEX_CANDIDATES.with(Cell::get),
        scan_candidates: SCAN_CANDIDATES.with(Cell::get),
        scan_fallbacks: SCAN_FALLBACKS.with(Cell::get),
        pool_restrictions: POOL_RESTRICTIONS.with(Cell::get),
        shard_skips: SHARD_SKIPS.with(Cell::get),
        order_planned: ORDER_PLANNED.with(Cell::get),
        order_replans: ORDER_REPLANS.with(Cell::get),
        est_candidates: EST_CANDIDATES.with(Cell::get),
        pruned_candidates: PRUNED_CANDIDATES.with(Cell::get),
        cand_memo_hits: CAND_MEMO_HITS.with(Cell::get),
    }
}

/// Snapshots and resets the current thread's counters. Call before and
/// after a unit of work to attribute counts to it.
pub fn take_stats() -> MatcherStats {
    MatcherStats {
        index_candidates: INDEX_CANDIDATES.with(|c| c.replace(0)),
        scan_candidates: SCAN_CANDIDATES.with(|c| c.replace(0)),
        scan_fallbacks: SCAN_FALLBACKS.with(|c| c.replace(0)),
        pool_restrictions: POOL_RESTRICTIONS.with(|c| c.replace(0)),
        shard_skips: SHARD_SKIPS.with(|c| c.replace(0)),
        order_planned: ORDER_PLANNED.with(|c| c.replace(0)),
        order_replans: ORDER_REPLANS.with(|c| c.replace(0)),
        est_candidates: EST_CANDIDATES.with(|c| c.replace(0)),
        pruned_candidates: PRUNED_CANDIDATES.with(|c| c.replace(0)),
        cand_memo_hits: CAND_MEMO_HITS.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        let _ = take_stats();
        count_index_candidates();
        count_index_candidates();
        count_pool_restriction();
        let s = matcher_stats();
        assert_eq!(s.index_candidates, 2);
        assert_eq!(s.pool_restrictions, 1);
        let taken = take_stats();
        assert_eq!(taken, s);
        assert_eq!(take_stats(), MatcherStats::default());
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = MatcherStats {
            index_candidates: 1,
            scan_candidates: 2,
            scan_fallbacks: 3,
            pool_restrictions: 4,
            shard_skips: 5,
            order_planned: 6,
            order_replans: 7,
            est_candidates: 8,
            pruned_candidates: 9,
            cand_memo_hits: 10,
        };
        a.merge(a);
        assert_eq!(a.index_candidates, 2);
        assert_eq!(a.scan_candidates, 4);
        assert_eq!(a.scan_fallbacks, 6);
        assert_eq!(a.pool_restrictions, 8);
        assert_eq!(a.shard_skips, 10);
        assert_eq!(a.order_planned, 12);
        assert_eq!(a.order_replans, 14);
        assert_eq!(a.est_candidates, 16);
        assert_eq!(a.pruned_candidates, 18);
        assert_eq!(a.cand_memo_hits, 20);
    }

    #[test]
    fn ordering_counters_round_trip() {
        let _ = take_stats();
        count_order_planned();
        count_order_replans();
        count_est_candidates(10);
        count_pruned_candidates(3);
        count_pruned_candidates(0); // zero increments are dropped
        let s = take_stats();
        assert_eq!(s.order_planned, 1);
        assert_eq!(s.order_replans, 1);
        assert_eq!(s.est_candidates, 10);
        assert_eq!(s.pruned_candidates, 3);
        let d = s.delta_since(MatcherStats::default());
        assert_eq!(d, s);
    }
}
