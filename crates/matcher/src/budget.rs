//! Resource budgets for one match-set computation.
//!
//! Subgraph isomorphism is NP-hard; one adversarial template can pin a
//! core or exhaust memory long before any wall-clock deadline check runs.
//! A [`MatchBudget`] caps the three quantities that grow without bound —
//! candidate-set size, backtracking steps, and emitted matches — and trips
//! a structured [`BudgetExceeded`] instead, letting callers degrade to a
//! partial, `truncated`-flagged result.

use std::fmt;

/// Caps applied to a single verification (all `None` = unlimited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchBudget {
    /// Maximum size of any per-query-node candidate set.
    pub max_candidates: Option<u64>,
    /// Maximum units of matching work: backtracking extension steps
    /// (candidate nodes tried) plus candidate-set construction and
    /// semi-join pruning (one unit per candidate built or adjacency
    /// entry visited), so a query whose cost is dominated by giant
    /// candidate spaces trips the cap even before enumeration starts.
    pub max_steps: Option<u64>,
    /// Maximum output matches emitted.
    pub max_matches: Option<u64>,
}

impl MatchBudget {
    /// A budget with no caps.
    pub const UNLIMITED: MatchBudget = MatchBudget {
        max_candidates: None,
        max_steps: None,
        max_matches: None,
    };

    /// Whether any cap is set.
    pub fn is_limited(&self) -> bool {
        self.max_candidates.is_some() || self.max_steps.is_some() || self.max_matches.is_some()
    }

    /// Field-wise: this budget's caps, falling back to `default` where
    /// unset. Used by the service to merge per-job caps over engine
    /// defaults.
    pub fn or(&self, default: &MatchBudget) -> MatchBudget {
        MatchBudget {
            max_candidates: self.max_candidates.or(default.max_candidates),
            max_steps: self.max_steps.or(default.max_steps),
            max_matches: self.max_matches.or(default.max_matches),
        }
    }

    /// Field-wise: the tighter of this budget's caps and `caps` — on each
    /// axis a set cap wins over an unset one, and when both are set the
    /// smaller applies. Used by the service's brownout controller, which
    /// may only ever *shrink* the resources a job runs with.
    pub fn tighten(&self, caps: &MatchBudget) -> MatchBudget {
        fn axis(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        MatchBudget {
            max_candidates: axis(self.max_candidates, caps.max_candidates),
            max_steps: axis(self.max_steps, caps.max_steps),
            max_matches: axis(self.max_matches, caps.max_matches),
        }
    }
}

/// Which cap a verification tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// A candidate set exceeded `max_candidates`.
    Candidates,
    /// The backtracking search exceeded `max_steps`.
    Steps,
    /// The match set exceeded `max_matches`.
    Matches,
    /// An external hard-stop flag ([`MatchOptions::stop`]
    /// (crate::MatchOptions::stop)) fired mid-search — e.g. a watchdog
    /// escalating past cooperative cancellation.
    HardStop,
}

impl BudgetKind {
    /// The wire/stats name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Candidates => "max_candidates",
            Self::Steps => "max_steps",
            Self::Matches => "max_matches",
            Self::HardStop => "hard_stop",
        }
    }
}

/// A verification stopped because a [`MatchBudget`] cap was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The cap that tripped.
    pub kind: BudgetKind,
    /// Its configured limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == BudgetKind::HardStop {
            return write!(f, "verification hard-stopped mid-search");
        }
        write!(
            f,
            "verification budget exceeded: {} > {}",
            self.kind.name(),
            self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefers_specific_caps() {
        let default = MatchBudget {
            max_candidates: Some(100),
            max_steps: Some(1000),
            max_matches: None,
        };
        let specific = MatchBudget {
            max_steps: Some(10),
            ..MatchBudget::default()
        };
        let merged = specific.or(&default);
        assert_eq!(merged.max_candidates, Some(100));
        assert_eq!(merged.max_steps, Some(10));
        assert_eq!(merged.max_matches, None);
        assert!(merged.is_limited());
        assert!(!MatchBudget::UNLIMITED.is_limited());
    }

    #[test]
    fn tighten_takes_the_smaller_cap_per_axis() {
        let merged = MatchBudget {
            max_candidates: Some(100),
            max_steps: None,
            max_matches: Some(5),
        };
        let brownout = MatchBudget {
            max_candidates: Some(50),
            max_steps: Some(1000),
            max_matches: Some(500),
        };
        let tight = merged.tighten(&brownout);
        assert_eq!(tight.max_candidates, Some(50), "both set: min wins");
        assert_eq!(tight.max_steps, Some(1000), "unset axis picks up the cap");
        assert_eq!(tight.max_matches, Some(5), "an already-tighter cap stays");
        // Tightening with UNLIMITED is the identity.
        assert_eq!(merged.tighten(&MatchBudget::UNLIMITED), merged);
    }

    #[test]
    fn display_names_the_cap() {
        let e = BudgetExceeded {
            kind: BudgetKind::Steps,
            limit: 42,
        };
        assert!(e.to_string().contains("max_steps"));
        assert!(e.to_string().contains("42"));
    }
}
