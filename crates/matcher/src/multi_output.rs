//! Multiple output nodes — the paper's future-work extension ("extend our
//! work to multiple output nodes", Section VI).
//!
//! A query with output nodes `(u_1, ..., u_k)` answers with **tuples**:
//! the distinct projections of embeddings onto the output coordinates.
//! This module computes tuple match sets; `fairsqg-measures` scores their
//! diversity ([`DiversityMeasure::score_tuples`]) and per-coordinate group
//! coverage, providing the building blocks for multi-output generation.
//!
//! [`DiversityMeasure::score_tuples`]: https://docs.rs/fairsqg-measures

use crate::candidates::satisfies_literals;
use fairsqg_graph::{Graph, NodeId};
use fairsqg_query::{ConcreteQuery, QNodeId};
use std::collections::HashSet;

/// Computes the distinct output tuples of `query` under injective
/// embeddings, projected onto `outputs` (each must be active). Stops after
/// `cap` distinct tuples (`0` = unlimited). Tuples are returned sorted.
///
/// # Panics
/// Panics if `outputs` is empty or contains an inactive node.
pub fn match_output_tuples(
    graph: &Graph,
    query: &ConcreteQuery,
    outputs: &[QNodeId],
    cap: usize,
) -> Vec<Vec<NodeId>> {
    assert!(!outputs.is_empty(), "need at least one output node");
    for &u in outputs {
        assert!(
            query.active[u.index()],
            "output node {u:?} is not in the matched component"
        );
    }
    let active: Vec<QNodeId> = query.active_nodes().collect();
    let out_pos: Vec<usize> = outputs
        .iter()
        .map(|&u| active.iter().position(|&a| a == u).unwrap())
        .collect();

    let mut tuples: HashSet<Vec<NodeId>> = HashSet::new();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(active.len());
    enumerate(
        graph,
        query,
        &active,
        &out_pos,
        &mut assignment,
        cap,
        &mut tuples,
    );
    let mut out: Vec<Vec<NodeId>> = tuples.into_iter().collect();
    out.sort();
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    graph: &Graph,
    query: &ConcreteQuery,
    active: &[QNodeId],
    out_pos: &[usize],
    assignment: &mut Vec<NodeId>,
    cap: usize,
    tuples: &mut HashSet<Vec<NodeId>>,
) {
    if cap != 0 && tuples.len() >= cap {
        return;
    }
    let pos = assignment.len();
    if pos == active.len() {
        tuples.insert(out_pos.iter().map(|&p| assignment[p]).collect());
        return;
    }
    let u = active[pos];
    let qn = &query.nodes[u.index()];
    'cand: for &v in graph.nodes_with_label(qn.label) {
        if assignment.contains(&v) || !satisfies_literals(graph, v, &qn.literals) {
            continue;
        }
        for &(s, d, l) in &query.edges {
            let spos = active.iter().position(|&a| a == s).unwrap();
            let dpos = active.iter().position(|&a| a == d).unwrap();
            if s == u && dpos < pos && !graph.has_edge(v, assignment[dpos], l) {
                continue 'cand;
            }
            if d == u && spos < pos && !graph.has_edge(assignment[spos], v, l) {
                continue 'cand;
            }
        }
        assignment.push(v);
        enumerate(graph, query, active, out_pos, assignment, cap, tuples);
        assignment.pop();
        if cap != 0 && tuples.len() >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{match_node_set, match_output_set, MatchOptions};
    use fairsqg_graph::GraphBuilder;
    use fairsqg_query::{Instantiation, RefinementDomains, TemplateBuilder};

    fn setup() -> (Graph, ConcreteQuery) {
        let mut b = GraphBuilder::new();
        let d1 = b.add_named_node("director", &[]);
        let d2 = b.add_named_node("director", &[]);
        let u1 = b.add_named_node("user", &[]);
        let u2 = b.add_named_node("user", &[]);
        b.add_named_edge(u1, d1, "rec");
        b.add_named_edge(u1, d2, "rec");
        b.add_named_edge(u2, d2, "rec");
        let g = b.finish();
        let s = g.schema();
        let mut tb = TemplateBuilder::new();
        let q0 = tb.node(s.find_node_label("director").unwrap());
        let q1 = tb.node(s.find_node_label("user").unwrap());
        tb.edge(q1, q0, s.find_edge_label("rec").unwrap());
        let t = tb.finish(q0).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(vec![]));
        (g, q)
    }

    #[test]
    fn tuples_are_the_distinct_embedding_projections() {
        let (g, q) = setup();
        let tuples = match_output_tuples(&g, &q, &[QNodeId(0), QNodeId(1)], 0);
        // Embeddings: (d1,u1), (d2,u1), (d2,u2).
        assert_eq!(
            tuples,
            vec![
                vec![NodeId(0), NodeId(2)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(1), NodeId(3)],
            ]
        );
    }

    #[test]
    fn single_output_tuples_agree_with_match_sets() {
        let (g, q) = setup();
        let tuples = match_output_tuples(&g, &q, &[QNodeId(0)], 0);
        let flattened: Vec<NodeId> = tuples.into_iter().map(|t| t[0]).collect();
        assert_eq!(flattened, match_output_set(&g, &q, MatchOptions::default()));
        let tuples1 = match_output_tuples(&g, &q, &[QNodeId(1)], 0);
        let flattened1: Vec<NodeId> = tuples1.into_iter().map(|t| t[0]).collect();
        assert_eq!(flattened1, match_node_set(&g, &q, QNodeId(1)));
    }

    #[test]
    fn cap_limits_distinct_tuples() {
        let (g, q) = setup();
        let tuples = match_output_tuples(&g, &q, &[QNodeId(0), QNodeId(1)], 2);
        assert_eq!(tuples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_outputs_rejected() {
        let (g, q) = setup();
        match_output_tuples(&g, &q, &[], 0);
    }
}
