//! Brute-force reference matcher used to validate the backtracking engine.
//!
//! Enumerates every injective assignment of graph nodes to active query
//! nodes and checks all constraints. Exponential — only for tests and
//! property-based validation on small inputs.

use crate::candidates::satisfies_literals;
use fairsqg_graph::{Graph, NodeId};
use fairsqg_query::{ConcreteQuery, QNodeId};

/// Computes `q(u_o, G)` by exhaustive enumeration. Sorted ascending.
pub fn match_output_set_bruteforce(graph: &Graph, query: &ConcreteQuery) -> Vec<NodeId> {
    let active: Vec<QNodeId> = query.active_nodes().collect();
    let out_pos = active
        .iter()
        .position(|&u| u == query.output)
        .expect("output node is active");

    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut assignment: Vec<NodeId> = vec![NodeId(0); active.len()];
    let mut result = Vec::new();
    enumerate(
        graph,
        query,
        &active,
        &nodes,
        &mut assignment,
        0,
        out_pos,
        &mut result,
    );
    result.sort_unstable();
    result.dedup();
    result
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    graph: &Graph,
    query: &ConcreteQuery,
    active: &[QNodeId],
    nodes: &[NodeId],
    assignment: &mut Vec<NodeId>,
    pos: usize,
    out_pos: usize,
    result: &mut Vec<NodeId>,
) {
    if pos == active.len() {
        if is_embedding(graph, query, active, assignment) {
            result.push(assignment[out_pos]);
        }
        return;
    }
    for &v in nodes {
        if assignment[..pos].contains(&v) {
            continue;
        }
        assignment[pos] = v;
        enumerate(
            graph,
            query,
            active,
            nodes,
            assignment,
            pos + 1,
            out_pos,
            result,
        );
    }
}

fn is_embedding(
    graph: &Graph,
    query: &ConcreteQuery,
    active: &[QNodeId],
    assignment: &[NodeId],
) -> bool {
    let image = |u: QNodeId| -> NodeId { assignment[active.iter().position(|&a| a == u).unwrap()] };
    for (i, &u) in active.iter().enumerate() {
        let qn = &query.nodes[u.index()];
        let v = assignment[i];
        if graph.label(v) != qn.label || !satisfies_literals(graph, v, &qn.literals) {
            return false;
        }
    }
    for &(s, d, l) in &query.edges {
        if !graph.has_edge(image(s), image(d), l) {
            return false;
        }
    }
    true
}
