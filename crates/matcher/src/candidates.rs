//! Candidate computation: which graph nodes can match each query node.

use fairsqg_graph::{Graph, NodeId};
use fairsqg_query::{BoundLiteral, ConcreteQuery, QNodeId};

/// Returns whether node `v` satisfies every literal in `lits`.
///
/// A literal over a missing attribute fails (the paper's matching requires
/// `h(u).A op c` to hold, which presupposes the attribute exists).
#[inline]
pub fn satisfies_literals(graph: &Graph, v: NodeId, lits: &[BoundLiteral]) -> bool {
    lits.iter().all(|l| match graph.attr(v, l.attr) {
        Some(val) => l.op.eval(val, l.value),
        None => false,
    })
}

/// Computes the candidate set of query node `u`: all graph nodes with the
/// right label that satisfy `u`'s literals. Sorted ascending (inherited from
/// the label index).
pub fn candidates(graph: &Graph, query: &ConcreteQuery, u: QNodeId) -> Vec<NodeId> {
    let node = &query.nodes[u.index()];
    graph
        .nodes_with_label(node.label)
        .iter()
        .copied()
        .filter(|&v| satisfies_literals(graph, v, &node.literals))
        .collect()
}

/// Like [`candidates`] but restricted to a pre-sorted pool (used by
/// `incVerify`: a refined instance's output matches are a subset of its
/// parent's, so only the parent's match set needs re-checking).
pub fn candidates_from_pool(
    graph: &Graph,
    query: &ConcreteQuery,
    u: QNodeId,
    pool: &[NodeId],
) -> Vec<NodeId> {
    let node = &query.nodes[u.index()];
    pool.iter()
        .copied()
        .filter(|&v| graph.label(v) == node.label && satisfies_literals(graph, v, &node.literals))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::{AttrValue, CmpOp, GraphBuilder};
    use fairsqg_query::{ConcreteQuery, RefinementDomains, TemplateBuilder};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        for (label, age) in [("user", 20), ("user", 35), ("user", 50), ("org", 10)] {
            b.add_named_node(label, &[("age", AttrValue::Int(age))]);
        }
        b.finish()
    }

    fn query_age_ge(graph: &Graph, bound: i64) -> ConcreteQuery {
        let user = graph.schema().find_node_label("user").unwrap();
        let age = graph.schema().find_attr("age").unwrap();
        let mut tb = TemplateBuilder::new();
        let u0 = tb.node(user);
        tb.literal(u0, age, CmpOp::Ge, AttrValue::Int(bound));
        let t = tb.finish(u0).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        ConcreteQuery::materialize(&t, &d, &fairsqg_query::Instantiation::new(vec![]))
    }

    #[test]
    fn label_and_literal_filtering() {
        let g = graph();
        let q = query_age_ge(&g, 30);
        let c = candidates(&g, &q, QNodeId(0));
        assert_eq!(c, vec![NodeId(1), NodeId(2)]); // org filtered by label
    }

    #[test]
    fn missing_attribute_fails_literal() {
        let mut b = GraphBuilder::new();
        b.add_named_node("user", &[]);
        let g = b.finish();
        // Ensure the attr exists in the schema even if no node carries it.
        let q = {
            let user = g.schema().find_node_label("user").unwrap();
            let mut schema = g.schema().clone();
            let age = schema.attr("age");
            let mut tb = TemplateBuilder::new();
            let u0 = tb.node(user);
            tb.literal(u0, age, CmpOp::Ge, AttrValue::Int(0));
            let t = tb.finish(u0).unwrap();
            let d = RefinementDomains::with_range_values(&t, vec![]);
            ConcreteQuery::materialize(&t, &d, &fairsqg_query::Instantiation::new(vec![]))
        };
        assert!(candidates(&g, &q, QNodeId(0)).is_empty());
    }

    #[test]
    fn pool_restriction() {
        let g = graph();
        let q = query_age_ge(&g, 30);
        let pool = [NodeId(0), NodeId(2), NodeId(3)];
        let c = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        assert_eq!(c, vec![NodeId(2)]);
    }
}
