//! Candidate computation: which graph nodes can match each query node.
//!
//! Two paths produce identical results:
//!
//! * [`candidates`] — the default hot path. Each range literal maps to a
//!   contiguous slice of the graph's per-`(label, attribute)` sorted value
//!   index ([`fairsqg_graph::AttrIndex`], two binary searches), and the
//!   slices are combined by gallop-intersection / residual filtering
//!   starting from the most selective literal. When even the most
//!   selective literal covers most of the label population the code falls
//!   back to the scan (sorting a near-population slice would cost more
//!   than the linear pass it replaces).
//! * [`candidates_scan`] — the naive reference path: scan the full label
//!   population and evaluate every literal per node. Kept for A/B
//!   benchmarking and as the equivalence oracle in tests.

use crate::stats;
use fairsqg_graph::{gallop_intersect, Graph, NodeId};
use fairsqg_query::{BoundLiteral, ConcreteQuery, QNodeId};

/// Returns whether node `v` satisfies every literal in `lits`.
///
/// A literal over a missing attribute fails (the paper's matching requires
/// `h(u).A op c` to hold, which presupposes the attribute exists).
#[inline]
pub fn satisfies_literals(graph: &Graph, v: NodeId, lits: &[BoundLiteral]) -> bool {
    lits.iter().all(|l| match graph.attr(v, l.attr) {
        Some(val) => l.op.eval(val, l.value),
        None => false,
    })
}

/// Indexed slices cheaper than the scan only while the most selective
/// literal covers at most this fraction of the label population (the
/// indexed path pays an `O(k log k)` sort of the slice's node ids).
const SCAN_FALLBACK_NUM: usize = 3;
const SCAN_FALLBACK_DEN: usize = 4;

/// Gallop-intersect a residual slice only while it is at most this many
/// times larger than the running candidate set; beyond that, re-checking
/// the literal per surviving candidate is cheaper than sorting the slice.
const GALLOP_MAX_RATIO: usize = 16;

/// Computes the candidate set of query node `u`: all graph nodes with the
/// right label that satisfy `u`'s literals. Sorted ascending.
///
/// This is the indexed hot path; it returns exactly what
/// [`candidates_scan`] returns (property-tested equivalence).
pub fn candidates(graph: &Graph, query: &ConcreteQuery, u: QNodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    candidates_into(graph, query, u, &mut out);
    out
}

/// [`candidates`] writing into a caller-owned buffer (cleared first) so
/// hot loops can reuse one allocation per query-node slot across verify
/// calls. Identical results and stats accounting.
pub(crate) fn candidates_into(
    graph: &Graph,
    query: &ConcreteQuery,
    u: QNodeId,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let node = &query.nodes[u.index()];
    let population = graph.nodes_with_label(node.label);
    if node.literals.is_empty() {
        stats::count_index_candidates();
        out.extend_from_slice(population);
        return;
    }

    // One value-index range slice per literal; a missing (label, attr)
    // pair means no node of this label carries the attribute, so the
    // literal — and the whole conjunction — is unsatisfiable. Shard
    // partition metadata (when present) narrows each boundary search to
    // one shard and counts the shards skipped wholesale.
    let mut ranges = Vec::with_capacity(node.literals.len());
    for l in &node.literals {
        let Some(p) = graph.attr_index().postings(node.label, l.attr) else {
            stats::count_index_candidates();
            return;
        };
        let shards = graph.partitions().shards(node.label, l.attr);
        let (slice, skipped) = p.range_sharded(l.op, l.value, shards);
        stats::count_shard_skips(skipped as u64);
        ranges.push((slice, l));
    }
    ranges.sort_by_key(|(slice, _)| slice.len());
    if ranges[0].0.is_empty() {
        stats::count_index_candidates();
        return;
    }

    // Hybrid fallback: a near-population slice makes the sort below more
    // expensive than the linear scan it replaces.
    if ranges[0].0.len() * SCAN_FALLBACK_DEN >= population.len() * SCAN_FALLBACK_NUM {
        stats::count_scan_fallback();
        candidates_scan_into(graph, query, u, out);
        return;
    }
    stats::count_index_candidates();

    // Seed from the most selective slice. Slices are sorted by (value,
    // node), so the extracted node ids must be re-sorted.
    out.extend(ranges[0].0.iter().map(|e| e.node()));
    out.sort_unstable();
    for &(slice, lit) in &ranges[1..] {
        if out.is_empty() {
            break;
        }
        if slice.len() <= out.len().saturating_mul(GALLOP_MAX_RATIO) {
            let mut other: Vec<NodeId> = slice.iter().map(|e| e.node()).collect();
            other.sort_unstable();
            *out = gallop_intersect(out, &other);
        } else {
            out.retain(|&v| {
                graph
                    .attr(v, lit.attr)
                    .is_some_and(|val| lit.op.eval(val, lit.value))
            });
        }
    }
}

/// Reference path: computes the candidate set by scanning the full label
/// population and evaluating every literal per node. Sorted ascending
/// (inherited from the label index).
pub fn candidates_scan(graph: &Graph, query: &ConcreteQuery, u: QNodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    candidates_scan_into(graph, query, u, &mut out);
    out
}

/// [`candidates_scan`] writing into a caller-owned buffer (cleared first).
pub(crate) fn candidates_scan_into(
    graph: &Graph,
    query: &ConcreteQuery,
    u: QNodeId,
    out: &mut Vec<NodeId>,
) {
    stats::count_scan_candidates();
    let node = &query.nodes[u.index()];
    out.clear();
    out.extend(
        graph
            .nodes_with_label(node.label)
            .iter()
            .copied()
            .filter(|&v| satisfies_literals(graph, v, &node.literals)),
    );
}

/// Like [`candidates`] but restricted to a pre-sorted pool (used by
/// `incVerify`: a refined instance's output matches are a subset of its
/// parent's, so only the parent's match set needs re-checking).
///
/// The pool must be label-homogeneous with `u`'s label — incVerify pools
/// are the parent's output match set, which matched the same output node
/// — so the label is asserted in debug builds rather than re-checked per
/// node on the hot path. Callers passing user-supplied pools (e.g. RPQ
/// reachable sets) must label-filter them first.
pub fn candidates_from_pool(
    graph: &Graph,
    query: &ConcreteQuery,
    u: QNodeId,
    pool: &[NodeId],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    candidates_from_pool_into(graph, query, u, pool, &mut out);
    out
}

/// [`candidates_from_pool`] writing into a caller-owned buffer (cleared
/// first).
pub(crate) fn candidates_from_pool_into(
    graph: &Graph,
    query: &ConcreteQuery,
    u: QNodeId,
    pool: &[NodeId],
    out: &mut Vec<NodeId>,
) {
    stats::count_pool_restriction();
    let node = &query.nodes[u.index()];
    debug_assert!(
        pool.iter().all(|&v| graph.label(v) == node.label),
        "incVerify pool contains a node whose label differs from the query node's"
    );
    out.clear();
    out.extend(
        pool.iter()
            .copied()
            .filter(|&v| satisfies_literals(graph, v, &node.literals)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::{AttrValue, CmpOp, GraphBuilder};
    use fairsqg_query::{ConcreteQuery, RefinementDomains, TemplateBuilder};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        for (label, age) in [("user", 20), ("user", 35), ("user", 50), ("org", 10)] {
            b.add_named_node(label, &[("age", AttrValue::Int(age))]);
        }
        b.finish()
    }

    fn query_age_ge(graph: &Graph, bound: i64) -> ConcreteQuery {
        let user = graph.schema().find_node_label("user").unwrap();
        let age = graph.schema().find_attr("age").unwrap();
        let mut tb = TemplateBuilder::new();
        let u0 = tb.node(user);
        tb.literal(u0, age, CmpOp::Ge, AttrValue::Int(bound));
        let t = tb.finish(u0).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        ConcreteQuery::materialize(&t, &d, &fairsqg_query::Instantiation::new(vec![]))
    }

    #[test]
    fn label_and_literal_filtering() {
        let g = graph();
        let q = query_age_ge(&g, 30);
        let c = candidates(&g, &q, QNodeId(0));
        assert_eq!(c, vec![NodeId(1), NodeId(2)]); // org filtered by label
        assert_eq!(c, candidates_scan(&g, &q, QNodeId(0)));
    }

    #[test]
    fn missing_attribute_fails_literal() {
        let mut b = GraphBuilder::new();
        b.add_named_node("user", &[]);
        let g = b.finish();
        // Ensure the attr exists in the schema even if no node carries it.
        let q = {
            let user = g.schema().find_node_label("user").unwrap();
            let mut schema = g.schema().clone();
            let age = schema.attr("age");
            let mut tb = TemplateBuilder::new();
            let u0 = tb.node(user);
            tb.literal(u0, age, CmpOp::Ge, AttrValue::Int(0));
            let t = tb.finish(u0).unwrap();
            let d = RefinementDomains::with_range_values(&t, vec![]);
            ConcreteQuery::materialize(&t, &d, &fairsqg_query::Instantiation::new(vec![]))
        };
        assert!(candidates(&g, &q, QNodeId(0)).is_empty());
        assert!(candidates_scan(&g, &q, QNodeId(0)).is_empty());
    }

    #[test]
    fn pool_restriction() {
        let g = graph();
        let q = query_age_ge(&g, 30);
        // Pool restricted to user-labeled nodes (incVerify precondition).
        let pool = [NodeId(0), NodeId(2)];
        let c = candidates_from_pool(&g, &q, QNodeId(0), &pool);
        assert_eq!(c, vec![NodeId(2)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "label differs")]
    fn heterogeneous_pool_asserts_in_debug() {
        let g = graph();
        let q = query_age_ge(&g, 30);
        // NodeId(3) is the org node — not a legal incVerify pool member.
        let _ = candidates_from_pool(&g, &q, QNodeId(0), &[NodeId(2), NodeId(3)]);
    }

    #[test]
    fn multi_literal_intersection_matches_scan() {
        let mut b = GraphBuilder::new();
        for i in 0..200i64 {
            b.add_named_node(
                "p",
                &[
                    ("a", AttrValue::Int(i % 17)),
                    ("b", AttrValue::Int(i % 5)),
                    ("c", AttrValue::Int(i)),
                ],
            );
        }
        let g = b.finish();
        let s = g.schema();
        let p = s.find_node_label("p").unwrap();
        let mut tb = TemplateBuilder::new();
        let u0 = tb.node(p);
        tb.literal(u0, s.find_attr("a").unwrap(), CmpOp::Le, AttrValue::Int(8));
        tb.literal(u0, s.find_attr("b").unwrap(), CmpOp::Eq, AttrValue::Int(2));
        tb.literal(
            u0,
            s.find_attr("c").unwrap(),
            CmpOp::Gt,
            AttrValue::Int(120),
        );
        let t = tb.finish(u0).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &d, &fairsqg_query::Instantiation::new(vec![]));
        let fast = candidates(&g, &q, QNodeId(0));
        let slow = candidates_scan(&g, &q, QNodeId(0));
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    #[test]
    fn non_selective_literal_falls_back_to_scan() {
        let g = graph();
        let _ = crate::take_stats();
        // age >= 0 covers the whole user population: hybrid picks the scan.
        let q = query_age_ge(&g, 0);
        let c = candidates(&g, &q, QNodeId(0));
        assert_eq!(c, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let s = crate::take_stats();
        assert_eq!(s.scan_fallbacks, 1);
        assert_eq!(s.scan_candidates, 1);
    }
}
