//! Cost-based matching-order planning from index cardinalities.
//!
//! The backtracking engine's order used to be chosen greedily from the
//! *actual* candidate-set sizes computed per verify call. That is a good
//! order, but it is recomputed on every call and knows nothing until the
//! candidate sets exist. A [`MatchPlan`] is built **once per template
//! shape** from the per-`(label, attribute)` postings the graph already
//! maintains: each range literal's selectivity is two binary searches
//! (`Postings::range_count`), a node's estimate is the minimum over its
//! literals (capped by its label population), and the order is the
//! connectivity-constrained smallest-estimate-first sequence with a
//! query-degree tiebreak (higher degree first — more constraints bind
//! earlier). The service's warm-state layer caches the plan per
//! `(template, graph epoch)`, so repeat jobs skip planning entirely.
//!
//! A plan never changes *results*: the output node is always position 0
//! and the match set is exactly the set of root candidates that extend to
//! a full embedding, which no permutation of the remaining positions can
//! alter. Validity only requires connectivity, which
//! [`MatchPlan::applies_to`] re-checks against each concrete instance
//! (edge variables can drop template edges, invalidating a root-shape
//! plan for some instances — those fall back to the in-call greedy
//! order).

use crate::stats;
use fairsqg_graph::Graph;
use fairsqg_query::{ConcreteQuery, QNodeId};

/// A cost-based matching order for one template shape: the output node
/// first, then the remaining active nodes smallest-estimated-candidates
/// first under the connectivity constraint.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    /// Active query nodes in matching order (`order[0]` is the output).
    order: Vec<QNodeId>,
    /// Estimated candidate cardinality per order position.
    estimates: Vec<u64>,
}

impl MatchPlan {
    /// The planned matching order (`order()[0]` is the output node).
    pub fn order(&self) -> &[QNodeId] {
        &self.order
    }

    /// Estimated candidate cardinalities, parallel to [`order`](Self::order).
    pub fn estimates(&self) -> &[u64] {
        &self.estimates
    }

    /// Whether this plan is valid for `query`'s active component: same
    /// active nodes, output first, and every position adjacent (under the
    /// *instance's* edges) to an earlier one. Instances whose edge
    /// variables dropped a template edge can fail this; the matcher then
    /// falls back to its in-call greedy order.
    pub fn applies_to(&self, query: &ConcreteQuery, active: &[QNodeId]) -> bool {
        if self.order.len() != active.len() || self.order.first() != Some(&query.output) {
            return false;
        }
        if !self.order.iter().all(|u| active.contains(u)) {
            return false;
        }
        for (pos, &u) in self.order.iter().enumerate().skip(1) {
            let earlier = &self.order[..pos];
            let connected = query.edges.iter().any(|&(s, d, _)| {
                (s == u && earlier.contains(&d)) || (d == u && earlier.contains(&s))
            });
            if !connected {
                return false;
            }
        }
        true
    }
}

/// Plans a matching order for `query`'s active component from index
/// cardinality estimates. Deterministic: ties break by higher query
/// degree, then lower query-node id. Counts one `order_planned` and the
/// summed `est_candidates` into the thread-local matcher stats.
pub fn plan_matching_order(graph: &Graph, query: &ConcreteQuery) -> MatchPlan {
    let active: Vec<QNodeId> = query.active_nodes().collect();
    debug_assert!(active.contains(&query.output));
    let est: Vec<u64> = active
        .iter()
        .map(|&u| estimate_candidates(graph, query, u))
        .collect();
    let qdeg = |u: QNodeId| -> usize {
        query
            .edges
            .iter()
            .filter(|&&(s, d, _)| s == u || d == u)
            .count()
    };

    let mut order = Vec::with_capacity(active.len());
    let mut estimates = Vec::with_capacity(active.len());
    let mut used = vec![false; active.len()];
    let out_slot = active
        .iter()
        .position(|&u| u == query.output)
        .expect("output node is active");
    order.push(active[out_slot]);
    estimates.push(est[out_slot]);
    used[out_slot] = true;
    while order.len() < active.len() {
        let mut best: Option<(usize, u64, usize)> = None; // (slot, est, degree)
        for (slot, &u) in active.iter().enumerate() {
            if used[slot] {
                continue;
            }
            let adjacent = query
                .edges
                .iter()
                .any(|&(s, d, _)| (s == u && order.contains(&d)) || (d == u && order.contains(&s)));
            if !adjacent {
                continue;
            }
            let (e, dg) = (est[slot], qdeg(u));
            let better = match best {
                None => true,
                Some((_, be, bd)) => e < be || (e == be && dg > bd),
            };
            if better {
                best = Some((slot, e, dg));
            }
        }
        let (slot, e, _) = best.expect("active component is connected");
        used[slot] = true;
        order.push(active[slot]);
        estimates.push(e);
    }
    stats::count_order_planned();
    stats::count_est_candidates(estimates.iter().sum());
    MatchPlan { order, estimates }
}

/// Upper-bound cardinality estimate for one query node: its label
/// population, tightened by the most selective literal the postings can
/// answer (two binary searches per literal — the same bounds the indexed
/// candidate path uses). Literals on attributes absent from the postings
/// contribute nothing (the scan fallback decides at match time).
fn estimate_candidates(graph: &Graph, query: &ConcreteQuery, u: QNodeId) -> u64 {
    let qn = &query.nodes[u.index()];
    let mut est = graph.nodes_with_label(qn.label).len() as u64;
    let index = graph.attr_index();
    for lit in &qn.literals {
        if let Some(postings) = index.postings(qn.label, lit.attr) {
            est = est.min(postings.range_count(lit.op, lit.value) as u64);
        }
    }
    est
}
