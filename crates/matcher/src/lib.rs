//! # fairsqg-matcher
//!
//! Subgraph-isomorphism matching engine for FairSQG: computes the match set
//! `q(u_o, G)` of a concrete query instance's output node (Section II,
//! "Matches"), with support for incremental re-verification of refined
//! instances (`incVerify`, Section IV).
//!
//! The engine uses candidate filtering (label index + literal predicates),
//! one-hop semi-join pruning of the candidate space, and connected
//! backtracking with adjacency-driven extension under a cost-based
//! matching order ([`plan_matching_order`]) that adapts mid-enumeration
//! when failure counts show it misjudged selectivity. A brute-force
//! reference implementation ([`match_output_set_bruteforce`]) validates
//! it in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backtrack;
mod budget;
mod candidates;
mod multi_output;
mod node_matches;
mod plan;
mod reference;
mod stats;

pub use backtrack::{
    match_output_set, try_match_output_set, try_match_output_set_with, MatchOptions, MatchScratch,
    STOP_POLL_STEPS,
};
pub use budget::{BudgetExceeded, BudgetKind, MatchBudget};
pub use candidates::{candidates, candidates_from_pool, candidates_scan, satisfies_literals};
pub use multi_output::match_output_tuples;
pub use node_matches::{count_embeddings, match_node_set};
pub use plan::{plan_matching_order, MatchPlan};
pub use reference::match_output_set_bruteforce;
pub use stats::{matcher_stats, take_stats, MatcherStats};

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::{AttrValue, CmpOp, Graph, GraphBuilder, NodeId};
    use fairsqg_query::{
        ConcreteQuery, DomainConfig, Instantiation, QueryTemplate, RefinementDomains,
        TemplateBuilder,
    };

    /// The talent-search style graph from the paper's running example:
    /// directors recommended by experienced users who work at large orgs.
    fn talent_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // Directors v1..v3
        let d1 = b.add_named_node("director", &[("gender", AttrValue::Int(0))]);
        let d2 = b.add_named_node("director", &[("gender", AttrValue::Int(1))]);
        let d3 = b.add_named_node("director", &[("gender", AttrValue::Int(1))]);
        // Recommenders
        let r1 = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(12))]);
        let r2 = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(6))]);
        // Orgs
        let o1 = b.add_named_node("org", &[("employees", AttrValue::Int(1500))]);
        let o2 = b.add_named_node("org", &[("employees", AttrValue::Int(300))]);
        b.add_named_edge(r1, d1, "recommend");
        b.add_named_edge(r1, d2, "recommend");
        b.add_named_edge(r2, d2, "recommend");
        b.add_named_edge(r2, d3, "recommend");
        b.add_named_edge(r1, o1, "worksAt");
        b.add_named_edge(r2, o2, "worksAt");
        b.finish()
    }

    /// Template: director u_o <-recommend- user u1 -worksAt-> org u2, with
    /// range vars on u1.yearsOfExp >= x and u2.employees >= y.
    fn talent_template(g: &Graph) -> (QueryTemplate, RefinementDomains) {
        let s = g.schema();
        let mut tb = TemplateBuilder::new();
        let u0 = tb.node(s.find_node_label("director").unwrap());
        let u1 = tb.node(s.find_node_label("user").unwrap());
        let u2 = tb.node(s.find_node_label("org").unwrap());
        tb.edge(u1, u0, s.find_edge_label("recommend").unwrap());
        tb.edge(u1, u2, s.find_edge_label("worksAt").unwrap());
        tb.range_literal(u1, s.find_attr("yearsOfExp").unwrap(), CmpOp::Ge);
        tb.range_literal(u2, s.find_attr("employees").unwrap(), CmpOp::Ge);
        let t = tb.finish(u0).unwrap();
        let d = RefinementDomains::build(&t, g, DomainConfig::default());
        (t, d)
    }

    #[test]
    fn root_instance_matches_all_recommended_directors() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let m = match_output_set(&g, &q, MatchOptions::default());
        assert_eq!(m, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(m, match_output_set_bruteforce(&g, &q));
    }

    #[test]
    fn refined_instance_shrinks_match_set() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        // Refine yearsOfExp fully: only r1 (12 yrs) qualifies -> d1, d2.
        let mut idx = vec![0u16; d.var_count()];
        idx[0] = (d.domain(0).len() - 1) as u16;
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(idx));
        let m = match_output_set(&g, &q, MatchOptions::default());
        assert_eq!(m, vec![NodeId(0), NodeId(1)]);
        assert_eq!(m, match_output_set_bruteforce(&g, &q));
    }

    #[test]
    fn restricting_output_pool_is_sound() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let root_q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let root_m = match_output_set(&g, &root_q, MatchOptions::default());

        // Refine employees to >= 1500: only o1 qualifies -> via r1 -> d1, d2.
        let mut idx = vec![0u16; d.var_count()];
        idx[1] = (d.domain(1).len() - 1) as u16;
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(idx));
        let full = match_output_set(&g, &q, MatchOptions::default());
        let restricted = match_output_set(
            &g,
            &q,
            MatchOptions {
                restrict_output: Some(&root_m),
                ..MatchOptions::default()
            },
        );
        assert_eq!(full, restricted);
        assert_eq!(full, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn unlimited_budget_agrees_with_plain_matching() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let plain = match_output_set(&g, &q, MatchOptions::default());
        let bounded =
            try_match_output_set(&g, &q, MatchOptions::default(), &MatchBudget::UNLIMITED).unwrap();
        assert_eq!(plain, bounded);
    }

    #[test]
    fn candidate_cap_trips_structurally() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let budget = MatchBudget {
            max_candidates: Some(1),
            ..MatchBudget::default()
        };
        let err = try_match_output_set(&g, &q, MatchOptions::default(), &budget).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Candidates);
        assert_eq!(err.limit, 1);
    }

    #[test]
    fn step_cap_trips_structurally() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let budget = MatchBudget {
            max_steps: Some(1),
            ..MatchBudget::default()
        };
        let err = try_match_output_set(&g, &q, MatchOptions::default(), &budget).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Steps);
    }

    #[test]
    fn match_cap_trips_structurally() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let budget = MatchBudget {
            max_matches: Some(2),
            ..MatchBudget::default()
        };
        // Root instance has 3 matches; a cap of 2 must trip.
        let err = try_match_output_set(&g, &q, MatchOptions::default(), &budget).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Matches);
        // A generous cap passes through untouched.
        let ok = try_match_output_set(
            &g,
            &q,
            MatchOptions::default(),
            &MatchBudget {
                max_matches: Some(10),
                ..MatchBudget::default()
            },
        )
        .unwrap();
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn hard_stop_flag_aborts_mid_search() {
        use std::sync::atomic::AtomicBool;
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        // A pre-fired flag must abort before any work (polled at candidate
        // computation and at every root extension).
        let fired = AtomicBool::new(true);
        let err = try_match_output_set(
            &g,
            &q,
            MatchOptions {
                stop: Some(&fired),
                ..MatchOptions::default()
            },
            &MatchBudget::UNLIMITED,
        )
        .unwrap_err();
        assert_eq!(err.kind, BudgetKind::HardStop);
        assert_eq!(err.to_string(), "verification hard-stopped mid-search");
        // An unfired flag is inert: results match the plain path.
        let idle = AtomicBool::new(false);
        let m = try_match_output_set(
            &g,
            &q,
            MatchOptions {
                stop: Some(&idle),
                ..MatchOptions::default()
            },
            &MatchBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(m, match_output_set(&g, &q, MatchOptions::default()));
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let g = talent_graph();
        let (t, d) = talent_template(&g);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::root(&d));
        let m = match_output_set(
            &g,
            &q,
            MatchOptions {
                restrict_output: Some(&[]),
                ..MatchOptions::default()
            },
        );
        assert!(m.is_empty());
    }

    #[test]
    fn injectivity_is_enforced() {
        // Query: a -knows-> b, a -knows-> c with b,c same label: needs two
        // distinct targets.
        let mut b = GraphBuilder::new();
        let x = b.add_named_node("p", &[]);
        let y = b.add_named_node("p", &[]);
        b.add_named_edge(x, y, "knows");
        let g1 = b.finish(); // only one target: no injective embedding

        let s = g1.schema();
        let p = s.find_node_label("p").unwrap();
        let knows = s.find_edge_label("knows").unwrap();
        let mut tb = TemplateBuilder::new();
        let a = tb.node(p);
        let b1 = tb.node(p);
        let c1 = tb.node(p);
        tb.edge(a, b1, knows);
        tb.edge(a, c1, knows);
        let t = tb.finish(a).unwrap();
        let d = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(vec![]));
        assert!(match_output_set(&g1, &q, MatchOptions::default()).is_empty());
        assert!(match_output_set_bruteforce(&g1, &q).is_empty());

        // Add a second target: now x matches.
        let mut b = GraphBuilder::with_schema(g1.schema().clone());
        let x = b.add_named_node("p", &[]);
        let y = b.add_named_node("p", &[]);
        let z = b.add_named_node("p", &[]);
        b.add_named_edge(x, y, "knows");
        b.add_named_edge(x, z, "knows");
        let g2 = b.finish();
        let m = match_output_set(&g2, &q, MatchOptions::default());
        assert_eq!(m, vec![x]);
        assert_eq!(m, match_output_set_bruteforce(&g2, &q));
    }

    #[test]
    fn cyclic_query_pattern() {
        // Triangle query over a graph with one triangle and one open wedge.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_named_node("p", &[])).collect();
        // Triangle 0->1->2->0
        b.add_named_edge(n[0], n[1], "e");
        b.add_named_edge(n[1], n[2], "e");
        b.add_named_edge(n[2], n[0], "e");
        // Wedge 3->4, 4->3 (2-cycle, no triangle)
        b.add_named_edge(n[3], n[4], "e");
        b.add_named_edge(n[4], n[3], "e");
        let g = b.finish();
        let s = g.schema();
        let p = s.find_node_label("p").unwrap();
        let e = s.find_edge_label("e").unwrap();
        let mut tb = TemplateBuilder::new();
        let a = tb.node(p);
        let c = tb.node(p);
        let dd = tb.node(p);
        tb.edge(a, c, e);
        tb.edge(c, dd, e);
        tb.edge(dd, a, e);
        let t = tb.finish(a).unwrap();
        let dom = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &dom, &Instantiation::new(vec![]));
        let m = match_output_set(&g, &q, MatchOptions::default());
        assert_eq!(m, vec![n[0], n[1], n[2]]);
        assert_eq!(m, match_output_set_bruteforce(&g, &q));
    }

    #[test]
    fn edge_labels_disambiguate() {
        let mut b = GraphBuilder::new();
        let x = b.add_named_node("p", &[]);
        let y = b.add_named_node("p", &[]);
        let z = b.add_named_node("p", &[]);
        b.add_named_edge(x, y, "likes");
        b.add_named_edge(x, z, "hates");
        let g = b.finish();
        let s = g.schema();
        let p = s.find_node_label("p").unwrap();
        let likes = s.find_edge_label("likes").unwrap();
        let mut tb = TemplateBuilder::new();
        let a = tb.node(p);
        let c = tb.node(p);
        tb.edge(a, c, likes);
        let t = tb.finish(c).unwrap(); // output = the liked node
        let d = RefinementDomains::with_range_values(&t, vec![]);
        let q = ConcreteQuery::materialize(&t, &d, &Instantiation::new(vec![]));
        let m = match_output_set(&g, &q, MatchOptions::default());
        assert_eq!(m, vec![y]);
        assert_eq!(m, match_output_set_bruteforce(&g, &q));
    }
}
