//! Cite-like synthetic citation graph (diversified and fair academic
//! recommendation).
//!
//! Stand-in for the Microsoft Academic graph the paper uses (4.9M nodes /
//! 46M edges, paper-topic groups). `paper` nodes carry `topic`,
//! `numberOfCitations`, and `year`; `author` nodes carry `hIndex`.
//! `cites` edges follow preferential attachment toward highly cited work.

use crate::util::{rng, zipf};
use fairsqg_graph::{AttrValue, Graph, GraphBuilder, GroupSet, NodeId};
use rand::Rng;

/// Research topics used for group induction (paper: "Machine Learning",
/// "Networking", ...).
pub const TOPICS: [&str; 8] = [
    "MachineLearning",
    "Databases",
    "Networking",
    "Security",
    "Theory",
    "Systems",
    "HCI",
    "Graphics",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CitationsConfig {
    /// Number of paper nodes (the output-label population).
    pub papers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationsConfig {
    fn default() -> Self {
        Self {
            papers: 1600,
            seed: 0xC17E,
        }
    }
}

/// Generates the citation graph.
///
/// Node types: `paper` (topic, numberOfCitations, year), `author` (hIndex,
/// papers). Edge types: `cites` (paper→paper, toward earlier papers),
/// `authored` (author→paper).
pub fn citations_graph(cfg: CitationsConfig) -> Graph {
    let mut r = rng(cfg.seed);
    let n_papers = cfg.papers.max(2);
    let n_authors = (n_papers / 2).max(2);

    // Phase 1: decide the citation structure (so `numberOfCitations` can be
    // written as an attribute at node-creation time).
    // Citations are *topic-biased*: the head topic (MachineLearning)
    // attracts extra citations beyond plain preferential attachment, so
    // `numberOfCitations` correlates with `topic`. The correlation lets a
    // revised citation threshold rebalance topic coverage (the same
    // mechanism as the paper's Fig. 12 genre rebalancing).
    let mut pa_pool: Vec<usize> = Vec::new();
    let mut head_topic_papers: Vec<usize> = Vec::new();
    let mut citation_counts = vec![0i64; n_papers];
    let mut cite_edges: Vec<(usize, usize)> = Vec::new();
    let mut topics = Vec::with_capacity(n_papers);
    for i in 0..n_papers {
        let topic = zipf(&mut r, TOPICS.len(), 0.7);
        topics.push(topic);
        if i > 0 {
            let refs = 2 + zipf(&mut r, 8, 1.0);
            for _ in 0..refs {
                let target = if !head_topic_papers.is_empty() && r.gen_bool(0.25) {
                    head_topic_papers[r.gen_range(0..head_topic_papers.len())]
                } else if pa_pool.is_empty() || r.gen_bool(0.3) {
                    r.gen_range(0..i)
                } else {
                    pa_pool[r.gen_range(0..pa_pool.len())]
                };
                cite_edges.push((i, target));
                citation_counts[target] += 1;
                pa_pool.push(target);
            }
        }
        if topic == 0 {
            head_topic_papers.push(i);
        }
        pa_pool.push(i);
    }

    // Phase 2: build the graph.
    let mut b = GraphBuilder::new();
    let topic_syms: Vec<_> = {
        let s = b.schema_mut();
        TOPICS.iter().map(|t| s.symbol(t)).collect()
    };
    let authors: Vec<NodeId> = (0..n_authors)
        .map(|_| {
            let h = zipf(&mut r, 60, 1.1) as i64;
            let np = 1 + zipf(&mut r, 30, 1.0) as i64;
            b.add_named_node(
                "author",
                &[
                    ("hIndex", AttrValue::Int(h)),
                    ("papers", AttrValue::Int(np)),
                ],
            )
        })
        .collect();
    let papers: Vec<NodeId> = (0..n_papers)
        .map(|i| {
            let year = 1980 + (i as i64 * 44) / n_papers as i64;
            b.add_named_node(
                "paper",
                &[
                    ("topic", AttrValue::Str(topic_syms[topics[i]])),
                    ("year", AttrValue::Int(year)),
                    ("numberOfCitations", AttrValue::Int(citation_counts[i])),
                ],
            )
        })
        .collect();
    for &(src, dst) in &cite_edges {
        b.add_named_edge(papers[src], papers[dst], "cites");
    }
    // Authorship: each paper gets 1–4 authors, Zipf-skewed.
    for &p in &papers {
        let k = 1 + zipf(&mut r, 4, 1.0);
        for _ in 0..k {
            let a = authors[zipf(&mut r, authors.len(), 0.8)];
            b.add_named_edge(a, p, "authored");
        }
    }

    b.finish()
}

/// Induces up to `m ≤ 4` topic groups over the papers (the paper induces
/// up to 4 groups of papers by topic).
pub fn topic_groups(graph: &Graph, m: usize) -> GroupSet {
    let topic = graph
        .schema()
        .find_attr("topic")
        .expect("citation graph has a topic attribute");
    let values: Vec<AttrValue> = TOPICS
        .iter()
        .take(m)
        .map(|t| AttrValue::Str(graph.schema().find_symbol(t).expect("topic symbol")))
        .collect();
    GroupSet::by_attribute(graph, topic, &values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shape() {
        let g = citations_graph(CitationsConfig {
            papers: 400,
            seed: 3,
        });
        let paper = g.schema().find_node_label("paper").unwrap();
        assert_eq!(g.label_population(paper), 400);
        assert!(g.edge_count() > 400 * 2);
    }

    #[test]
    fn citations_point_backwards_in_time() {
        let g = citations_graph(CitationsConfig {
            papers: 300,
            seed: 8,
        });
        let year = g.schema().find_attr("year").unwrap();
        let cites = g.schema().find_edge_label("cites").unwrap();
        for v in g.nodes() {
            for a in g.out_neighbors(v) {
                if a.label() == cites {
                    let w = a.to();
                    let (vy, wy) = (g.attr(v, year).unwrap(), g.attr(w, year).unwrap());
                    assert!(wy <= vy, "citation into the future");
                }
            }
        }
    }

    #[test]
    fn citation_counts_match_in_degree() {
        let g = citations_graph(CitationsConfig {
            papers: 250,
            seed: 5,
        });
        let noc = g.schema().find_attr("numberOfCitations").unwrap();
        let cites = g.schema().find_edge_label("cites").unwrap();
        let paper = g.schema().find_node_label("paper").unwrap();
        for &p in g.nodes_with_label(paper) {
            let declared = g.attr(p, noc).unwrap().as_int().unwrap();
            let actual = g
                .in_neighbors(p)
                .iter()
                .filter(|a| a.label() == cites)
                .count() as i64;
            // Duplicate (src,dst) citations collapse in the edge set, so the
            // declared count can slightly exceed the distinct in-degree.
            assert!(declared >= actual, "declared {declared} < actual {actual}");
        }
    }

    #[test]
    fn topic_groups_nonempty() {
        let g = citations_graph(CitationsConfig {
            papers: 600,
            seed: 2,
        });
        let groups = topic_groups(&g, 4);
        assert_eq!(groups.len(), 4);
        for i in 0..4 {
            assert!(groups.size(fairsqg_graph::GroupId(i)) > 0);
        }
    }

    #[test]
    fn citations_correlate_with_topic() {
        let g = citations_graph(CitationsConfig {
            papers: 2000,
            seed: 6,
        });
        let s = g.schema();
        let topic = s.find_attr("topic").unwrap();
        let noc = s.find_attr("numberOfCitations").unwrap();
        let head = AttrValue::Str(s.find_symbol(TOPICS[0]).unwrap());
        let (mut head_sum, mut head_n, mut rest_sum, mut rest_n) = (0i64, 0i64, 0i64, 0i64);
        let paper = s.find_node_label("paper").unwrap();
        for &p in g.nodes_with_label(paper) {
            let c = g.attr(p, noc).unwrap().as_int().unwrap();
            if g.attr(p, topic) == Some(head) {
                head_sum += c;
                head_n += 1;
            } else {
                rest_sum += c;
                rest_n += 1;
            }
        }
        let head_mean = head_sum as f64 / head_n as f64;
        let rest_mean = rest_sum as f64 / rest_n as f64;
        assert!(
            head_mean > rest_mean * 1.3,
            "head-topic mean {head_mean} vs rest {rest_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = citations_graph(CitationsConfig {
            papers: 150,
            seed: 7,
        });
        let b = citations_graph(CitationsConfig {
            papers: 150,
            seed: 7,
        });
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
