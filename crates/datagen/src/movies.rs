//! DBP-like synthetic movie knowledge graph.
//!
//! Stand-in for the DBpedia movie graph the paper evaluates on (1M nodes /
//! 3.18M edges, genre/country groups). The generator reproduces the
//! *structural knobs* the experiments depend on — labeled node types,
//! skewed genre/country distributions, numeric attributes with non-trivial
//! active domains — at a configurable scale.

use crate::util::{log_uniform, rng, zipf};
use fairsqg_graph::{AttrValue, Graph, GraphBuilder, GroupSet, NodeId};
use rand::Rng;

/// Genres used for group induction (skewed by a Zipf law, like real
/// catalogs: lots of drama/romance, few westerns).
pub const GENRES: [&str; 10] = [
    "Romance",
    "Drama",
    "Action",
    "Comedy",
    "Horror",
    "Thriller",
    "SciFi",
    "Animation",
    "Documentary",
    "Western",
];

/// Production countries (also usable for groups).
pub const COUNTRIES: [&str; 8] = ["US", "UK", "FR", "IN", "JP", "KR", "DE", "BR"];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct MoviesConfig {
    /// Number of movie nodes (the output-label population).
    pub movies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        Self {
            movies: 2000,
            seed: 0xDB,
        }
    }
}

/// Generates the movie knowledge graph.
///
/// Node types: `movie` (rating 0–100, year, genre, votes), `director`
/// (awards, yearsActive), `actor` (age, awards), `country` (gdpRank).
/// Edge types: `directed` (director→movie), `actedIn` (actor→movie),
/// `producedIn` (movie→country), `bornIn` (actor→country).
pub fn movies_graph(cfg: MoviesConfig) -> Graph {
    let mut r = rng(cfg.seed);
    let mut b = GraphBuilder::new();

    let n_movies = cfg.movies.max(1);
    let n_directors = (n_movies / 5).max(2);
    let n_actors = (n_movies * 2).max(4);

    let mut genres_syms = Vec::new();
    let mut country_syms = Vec::new();
    {
        let s = b.schema_mut();
        for g in GENRES {
            genres_syms.push(s.symbol(g));
        }
        for c in COUNTRIES {
            country_syms.push(s.symbol(c));
        }
    }

    // Countries first (few, referenced by everything).
    let countries: Vec<NodeId> = (0..COUNTRIES.len())
        .map(|i| {
            b.add_named_node(
                "country",
                &[
                    ("gdpRank", AttrValue::Int(i as i64 + 1)),
                    ("name", AttrValue::Str(country_syms[i])),
                ],
            )
        })
        .collect();

    let directors: Vec<NodeId> = (0..n_directors)
        .map(|_| {
            let awards = zipf(&mut r, 11, 1.2) as i64;
            let years = r.gen_range(1..40);
            b.add_named_node(
                "director",
                &[
                    ("awards", AttrValue::Int(awards)),
                    ("yearsActive", AttrValue::Int(years)),
                ],
            )
        })
        .collect();

    let actors: Vec<NodeId> = (0..n_actors)
        .map(|_| {
            let age = r.gen_range(18..80);
            let awards = zipf(&mut r, 8, 1.5) as i64;
            b.add_named_node(
                "actor",
                &[
                    ("age", AttrValue::Int(age)),
                    ("awards", AttrValue::Int(awards)),
                ],
            )
        })
        .collect();

    let movies: Vec<NodeId> = (0..n_movies)
        .map(|_| {
            let genre_idx = zipf(&mut r, GENRES.len(), 0.8);
            let genre = genres_syms[genre_idx];
            // Ratings on a 0–100 scale (paper case study: "rating > 7"
            // corresponds to 70 here), roughly bell-shaped — with a
            // genre-dependent shift. The correlation matters: it is what
            // lets a revised rating threshold *rebalance* genre coverage
            // (the paper's Fig. 12 narrative), instead of shrinking every
            // genre proportionally.
            let genre_bias = match genre_idx {
                0 => -8, // Romance skews lower-rated
                4 => 10, // Horror skews higher-rated
                i => (i as i64 % 5) * 3 - 6,
            };
            let rating: i64 =
                ((0..4).map(|_| r.gen_range(0..=25i64)).sum::<i64>() + genre_bias).clamp(0, 100);
            let year = r.gen_range(1950..=2023i64);
            let votes =
                log_uniform(&mut r, 10, 2_000_000) as i64 + if genre_idx == 0 { 50_000 } else { 0 };
            b.add_named_node(
                "movie",
                &[
                    ("genre", AttrValue::Str(genre)),
                    ("rating", AttrValue::Int(rating)),
                    ("year", AttrValue::Int(year)),
                    ("votes", AttrValue::Int(votes)),
                ],
            )
        })
        .collect();

    // Edges. Directors and countries get Zipf-skewed popularity.
    for (i, &m) in movies.iter().enumerate() {
        let d = directors[zipf(&mut r, directors.len(), 0.7)];
        b.add_named_edge(d, m, "directed");
        let c = countries[zipf(&mut r, countries.len(), 0.9)];
        b.add_named_edge(m, c, "producedIn");
        let cast = 3 + (i % 4);
        for _ in 0..cast {
            let a = actors[zipf(&mut r, actors.len(), 0.6)];
            b.add_named_edge(a, m, "actedIn");
        }
    }
    for &a in &actors {
        let c = countries[zipf(&mut r, countries.len(), 0.9)];
        b.add_named_edge(a, c, "bornIn");
    }

    b.finish()
}

/// Induces up to `m ≤ 5` disjoint genre groups over the movies, using the
/// `m` most common genres (the paper induces 2–5 movie groups by genre).
pub fn genre_groups(graph: &Graph, m: usize) -> GroupSet {
    let genre = graph
        .schema()
        .find_attr("genre")
        .expect("movies graph has a genre attribute");
    let values: Vec<AttrValue> = GENRES
        .iter()
        .take(m)
        .map(|g| AttrValue::Str(graph.schema().find_symbol(g).expect("genre symbol")))
        .collect();
    GroupSet::by_attribute(graph, genre, &values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_expected_shape() {
        let g = movies_graph(MoviesConfig {
            movies: 300,
            seed: 1,
        });
        let movie = g.schema().find_node_label("movie").unwrap();
        assert_eq!(g.label_population(movie), 300);
        assert!(g.edge_count() > 300 * 3);
        assert!(g.schema().find_edge_label("directed").is_some());
        assert!(g.avg_attrs_per_node() > 1.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = movies_graph(MoviesConfig {
            movies: 100,
            seed: 5,
        });
        let b = movies_graph(MoviesConfig {
            movies: 100,
            seed: 5,
        });
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let rating = a.schema().find_attr("rating").unwrap();
        for v in a.nodes() {
            assert_eq!(a.attr(v, rating), b.attr(v, rating));
        }
    }

    #[test]
    fn genre_groups_are_disjoint_and_nonempty() {
        let g = movies_graph(MoviesConfig {
            movies: 500,
            seed: 2,
        });
        let groups = genre_groups(&g, 3);
        assert_eq!(groups.len(), 3);
        for i in 0..3 {
            assert!(
                groups.size(fairsqg_graph::GroupId(i)) > 0,
                "group {i} empty"
            );
        }
        // The Zipf head group should dominate the tail group.
        assert!(groups.size(fairsqg_graph::GroupId(0)) > groups.size(fairsqg_graph::GroupId(2)));
    }

    #[test]
    fn rating_correlates_with_genre() {
        // Horror must skew higher-rated than Romance so that rating
        // thresholds can rebalance genre coverage.
        let g = movies_graph(MoviesConfig {
            movies: 2000,
            seed: 4,
        });
        let genre = g.schema().find_attr("genre").unwrap();
        let rating = g.schema().find_attr("rating").unwrap();
        let romance = AttrValue::Str(g.schema().find_symbol("Romance").unwrap());
        let horror = AttrValue::Str(g.schema().find_symbol("Horror").unwrap());
        let mean = |target: AttrValue| -> f64 {
            let vals: Vec<i64> = g
                .nodes()
                .filter(|&v| g.attr(v, genre) == Some(target))
                .filter_map(|v| g.attr(v, rating).and_then(|x| x.as_int()))
                .collect();
            vals.iter().sum::<i64>() as f64 / vals.len() as f64
        };
        assert!(
            mean(horror) > mean(romance) + 5.0,
            "horror {} vs romance {}",
            mean(horror),
            mean(romance)
        );
    }

    #[test]
    fn ratings_span_a_wide_active_domain() {
        let g = movies_graph(MoviesConfig {
            movies: 500,
            seed: 3,
        });
        let rating = g.schema().find_attr("rating").unwrap();
        let dom = g.domains().global(rating);
        assert!(dom.len() > 30, "rating domain too small: {}", dom.len());
    }
}
