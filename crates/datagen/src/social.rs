//! LKI-like synthetic professional network (talent search, Example 1).
//!
//! Stand-in for the LinkedIn-style graph the paper uses (3M nodes / 26M
//! edges, synthetic gender groups). Produces `director` nodes (the search
//! targets, with skewed genders and diverse majors), `user` recommenders,
//! and `org` employers, wired with `recommend`, `worksAt`, and `coReview`
//! edges under preferential attachment.

use crate::util::{log_uniform, rng, zipf};
use fairsqg_graph::{AttrValue, Graph, GraphBuilder, GroupSet, NodeId};
use rand::Rng;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SocialConfig {
    /// Number of director nodes (the output-label population).
    pub directors: usize,
    /// Fraction of directors in the majority gender group (the paper's
    /// motivating query returns a 375:173 ≈ 0.68 split).
    pub majority_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            directors: 1500,
            majority_share: 0.65,
            seed: 0x11C1,
        }
    }
}

/// Number of distinct majors directors can have (diversity axis of the
/// talent-search case study: "candidates that span 10 majors").
pub const MAJORS: i64 = 20;

/// Generates the professional network.
///
/// Node types: `director` (gender 0/1, major, yearsOfExp), `user`
/// (yearsOfExp, endorsements), `org` (employees, founded).
/// Edge types: `recommend` (user→director), `worksAt` (user→org),
/// `coReview` (user→user).
pub fn social_graph(cfg: SocialConfig) -> Graph {
    let mut r = rng(cfg.seed);
    let mut b = GraphBuilder::new();

    let n_dir = cfg.directors.max(2);
    let n_users = n_dir * 3;
    let n_orgs = (n_dir / 10).max(5);

    let mut director_genders: Vec<i64> = Vec::with_capacity(n_dir);
    let directors: Vec<NodeId> = (0..n_dir)
        .map(|_| {
            let gender = if r.gen_bool(cfg.majority_share) { 0 } else { 1 };
            director_genders.push(gender);
            let major = r.gen_range(0..MAJORS);
            let exp = r.gen_range(0..35i64);
            b.add_named_node(
                "director",
                &[
                    ("gender", AttrValue::Int(gender)),
                    ("major", AttrValue::Int(major)),
                    ("yearsOfExp", AttrValue::Int(exp)),
                ],
            )
        })
        .collect();
    let minority_directors: Vec<NodeId> = directors
        .iter()
        .zip(&director_genders)
        .filter(|&(_, &g)| g == 1)
        .map(|(&d, _)| d)
        .collect();

    let mut user_exp: Vec<i64> = Vec::with_capacity(n_users);
    let users: Vec<NodeId> = (0..n_users)
        .map(|_| {
            let exp = r.gen_range(0..31i64);
            user_exp.push(exp);
            let endorsements = zipf(&mut r, 50, 1.1) as i64;
            b.add_named_node(
                "user",
                &[
                    ("yearsOfExp", AttrValue::Int(exp)),
                    ("endorsements", AttrValue::Int(endorsements)),
                ],
            )
        })
        .collect();

    let orgs: Vec<NodeId> = (0..n_orgs)
        .map(|_| {
            let employees = log_uniform(&mut r, 10, 20_000) as i64;
            let founded = r.gen_range(1950..=2020i64);
            b.add_named_node(
                "org",
                &[
                    ("employees", AttrValue::Int(employees)),
                    ("founded", AttrValue::Int(founded)),
                ],
            )
        })
        .collect();

    // Preferential attachment on recommendation targets: popular directors
    // accumulate recommendations (dense social structure, like LKI).
    //
    // Recommendations are *experience-biased*: senior recommenders
    // (yearsOfExp ≥ 15) disproportionately recommend minority-group
    // directors. This correlation is what lets a revised experience
    // threshold *rebalance* the answer's gender mix (the paper's
    // Example 1: changing the recommender predicate changes the gender
    // distribution of the candidates), instead of shrinking both groups
    // proportionally.
    let mut pa_pool: Vec<NodeId> = directors.clone();
    for (ui, &u) in users.iter().enumerate() {
        let senior = user_exp[ui] >= 15;
        let fanout = 2 + zipf(&mut r, 5, 1.0);
        for _ in 0..fanout {
            let d = if senior && !minority_directors.is_empty() && r.gen_bool(0.6) {
                minority_directors[r.gen_range(0..minority_directors.len())]
            } else {
                pa_pool[r.gen_range(0..pa_pool.len())]
            };
            b.add_named_edge(u, d, "recommend");
            pa_pool.push(d);
        }
        let o = orgs[zipf(&mut r, orgs.len(), 0.8)];
        b.add_named_edge(u, o, "worksAt");
    }
    // Sparse co-review ties between users.
    for (i, &u) in users.iter().enumerate() {
        if i % 3 == 0 {
            let v = users[r.gen_range(0..users.len())];
            if v != u {
                b.add_named_edge(u, v, "coReview");
            }
        }
    }

    b.finish()
}

/// Induces the two gender groups over directors (the paper synthesizes
/// genders with inference tools \[14\]; here they are generated directly
/// with a configurable skew).
pub fn gender_groups(graph: &Graph) -> GroupSet {
    let gender = graph
        .schema()
        .find_attr("gender")
        .expect("social graph has a gender attribute");
    GroupSet::by_attribute(graph, gender, &[AttrValue::Int(0), AttrValue::Int(1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::GroupId;

    #[test]
    fn graph_shape() {
        let g = social_graph(SocialConfig {
            directors: 200,
            majority_share: 0.65,
            seed: 9,
        });
        let director = g.schema().find_node_label("director").unwrap();
        let user = g.schema().find_node_label("user").unwrap();
        assert_eq!(g.label_population(director), 200);
        assert_eq!(g.label_population(user), 600);
        assert!(g.edge_count() > 600 * 2);
    }

    #[test]
    fn gender_groups_reflect_skew() {
        let g = social_graph(SocialConfig {
            directors: 2000,
            majority_share: 0.7,
            seed: 4,
        });
        let groups = gender_groups(&g);
        let a = groups.size(GroupId(0)) as f64;
        let b = groups.size(GroupId(1)) as f64;
        let share = a / (a + b);
        assert!((share - 0.7).abs() < 0.05, "observed share {share}");
    }

    #[test]
    fn senior_recommendations_favor_the_minority_group() {
        let g = social_graph(SocialConfig {
            directors: 1000,
            majority_share: 0.7,
            seed: 13,
        });
        let s = g.schema();
        let user = s.find_node_label("user").unwrap();
        let gender = s.find_attr("gender").unwrap();
        let exp = s.find_attr("yearsOfExp").unwrap();
        let recommend = s.find_edge_label("recommend").unwrap();
        let mut senior = (0u32, 0u32); // (minority, total)
        let mut junior = (0u32, 0u32);
        for &u in g.nodes_with_label(user) {
            let is_senior = g.attr(u, exp).unwrap().as_int().unwrap() >= 15;
            for a in g.out_neighbors(u) {
                if a.label() != recommend {
                    continue;
                }
                if let Some(val) = g.attr(a.to(), gender) {
                    let slot = if is_senior { &mut senior } else { &mut junior };
                    slot.1 += 1;
                    if val == AttrValue::Int(1) {
                        slot.0 += 1;
                    }
                }
            }
        }
        let senior_share = senior.0 as f64 / senior.1 as f64;
        let junior_share = junior.0 as f64 / junior.1 as f64;
        assert!(
            senior_share > junior_share + 0.15,
            "senior minority share {senior_share} vs junior {junior_share}"
        );
    }

    #[test]
    fn recommendations_are_skewed() {
        let g = social_graph(SocialConfig {
            directors: 300,
            majority_share: 0.6,
            seed: 11,
        });
        let director = g.schema().find_node_label("director").unwrap();
        let degs: Vec<usize> = g
            .nodes_with_label(director)
            .iter()
            .map(|&v| g.in_degree(v))
            .collect();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            (max as f64) > mean * 3.0,
            "preferential attachment should create hubs (max {max}, mean {mean})"
        );
    }
}
