//! End-to-end workload presets mirroring the paper's experiment settings
//! (Table II): a dataset, an induced group set with coverage constraints,
//! and a feasibility-checked template.

use crate::citations::{citations_graph, topic_groups, CitationsConfig};
use crate::movies::{genre_groups, movies_graph, MoviesConfig};
use crate::social::{gender_groups, social_graph, SocialConfig};
use crate::templates::{generate_template_with_retry, TemplateSpec, Topology};
use fairsqg_graph::{CoverageSpec, Graph, GroupSet};
use fairsqg_matcher::{match_output_set, MatchOptions};
use fairsqg_query::{ConcreteQuery, Instantiation, QueryTemplate, RefinementDomains};

/// Local feasibility test (avoids a dependency on `fairsqg-measures`):
/// every group must be covered with at least its constraint.
fn is_feasible(counts: &[u32], spec: &CoverageSpec) -> bool {
    counts
        .iter()
        .zip(spec.constraints())
        .all(|(&got, &want)| got >= want)
}

/// The three datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// DBP: movie knowledge graph, genre groups.
    Dbp,
    /// LKI: professional network, gender groups.
    Lki,
    /// Cite: citation graph, topic groups.
    Cite,
}

impl DatasetKind {
    /// The dataset's display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dbp => "DBP",
            DatasetKind::Lki => "LKI",
            DatasetKind::Cite => "Cite",
        }
    }

    /// The output-node label of the dataset's canonical query scenario.
    pub fn output_label(self) -> &'static str {
        match self {
            DatasetKind::Dbp => "movie",
            DatasetKind::Lki => "director",
            DatasetKind::Cite => "paper",
        }
    }
}

/// How the coverage constraints `c_i` are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverageMode {
    /// A fixed total budget `C`, split evenly over groups (the paper's
    /// `C = 200` setting). Feasibility depends on the graph scale.
    Absolute(u32),
    /// Equal opportunity calibrated to the template: every group gets
    /// `c = fraction × min_i |q_r(G) ∩ P_i|`, where `q_r` is the root
    /// instance. Fractions below 1.0 guarantee a feasible root; fractions
    /// near or above 1.0 starve the feasible region (the effect Fig. 9(f)
    /// studies by growing `C`).
    AutoFraction(f64),
}

/// Workload parameters (the knobs of Fig. 9/10).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Template size `|Q(u_o)|` (edges).
    pub template_edges: usize,
    /// `|X_L|` range variables.
    pub range_vars: usize,
    /// `|X_E|` edge variables.
    pub edge_vars: usize,
    /// `|P|` groups (clamped to what the dataset supports).
    pub groups: usize,
    /// Coverage-constraint selection.
    pub coverage: CoverageMode,
    /// Cap on constants per range variable (controls `|I(Q)|`).
    pub max_values_per_range_var: usize,
    /// Template topology.
    pub topology: Topology,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        // The paper's default: |P| = 2, C = 200, |Q| = 3, |X| = 3.
        Self {
            template_edges: 3,
            range_vars: 2,
            edge_vars: 1,
            groups: 2,
            coverage: CoverageMode::AutoFraction(0.5),
            max_values_per_range_var: 8,
            topology: Topology::Random,
            seed: 0xFA1,
        }
    }
}

/// A ready-to-run workload.
pub struct Workload {
    /// The dataset name (Table II row).
    pub name: String,
    /// The data graph.
    pub graph: Graph,
    /// The query template.
    pub template: QueryTemplate,
    /// Its refinement domains.
    pub domains: RefinementDomains,
    /// The designated groups.
    pub groups: GroupSet,
    /// Coverage constraints.
    pub spec: CoverageSpec,
}

impl Workload {
    /// `|I(Q)|` of the workload's template.
    pub fn instance_space_size(&self) -> u64 {
        self.domains.instance_space_size()
    }
}

/// Builds a workload for `kind` at `scale` output-label nodes.
///
/// The template is retried across seeds until its **root instance is
/// feasible** (covers every group with at least `c_i` matches), so the
/// generated instance space always contains feasible instances. If the
/// coverage budget is too large for the graph scale, the best-effort
/// template (feasibility unchecked) is returned — matching the paper's
/// observation that large `C` leaves few or no feasible instances.
pub fn workload(kind: DatasetKind, scale: usize, params: &WorkloadParams) -> Workload {
    let graph = match kind {
        DatasetKind::Dbp => movies_graph(MoviesConfig {
            movies: scale,
            seed: params.seed,
        }),
        DatasetKind::Lki => social_graph(SocialConfig {
            directors: scale,
            majority_share: 0.65,
            seed: params.seed,
        }),
        DatasetKind::Cite => citations_graph(CitationsConfig {
            papers: scale,
            seed: params.seed,
        }),
    };
    let groups = match kind {
        DatasetKind::Dbp => genre_groups(&graph, params.groups.clamp(2, 5)),
        DatasetKind::Lki => gender_groups(&graph),
        DatasetKind::Cite => topic_groups(&graph, params.groups.clamp(2, 4)),
    };

    let tspec = TemplateSpec {
        edges: params.template_edges,
        range_vars: params.range_vars,
        edge_vars: params.edge_vars,
        topology: params.topology,
        output_label: kind.output_label().to_string(),
        max_values_per_range_var: params.max_values_per_range_var,
        seed: params.seed,
    };

    let root_counts = |t: &QueryTemplate, d: &RefinementDomains| -> Vec<u32> {
        let root = Instantiation::root(d);
        let q = ConcreteQuery::materialize(t, d, &root);
        let matches = match_output_set(&graph, &q, MatchOptions::default());
        groups.count_in_groups(&matches)
    };
    // Accept templates whose root answer exercises every group (and, for an
    // absolute budget, satisfies it outright).
    let acceptance = |t: &QueryTemplate, d: &RefinementDomains| -> bool {
        let counts = root_counts(t, d);
        match params.coverage {
            CoverageMode::Absolute(c_total) => {
                let spec = CoverageSpec::even_split(groups.len(), c_total);
                is_feasible(&counts, &spec)
            }
            CoverageMode::AutoFraction(_) => counts.iter().all(|&c| c >= 4),
        }
    };
    let (template, domains) = generate_template_with_retry(&graph, &tspec, 64, acceptance)
        .or_else(|| generate_template_with_retry(&graph, &tspec, 64, |_, _| true))
        .expect("workload template generation failed even without feasibility check");

    let spec = match params.coverage {
        CoverageMode::Absolute(c_total) => CoverageSpec::even_split(groups.len(), c_total),
        CoverageMode::AutoFraction(frac) => {
            let counts = root_counts(&template, &domains);
            let min_count = counts.iter().copied().min().unwrap_or(1).max(1);
            let c = ((min_count as f64) * frac).round().max(1.0) as u32;
            CoverageSpec::equal_opportunity(groups.len(), c)
        }
    };

    Workload {
        name: kind.name().to_string(),
        graph,
        template,
        domains,
        groups,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workloads_have_feasible_roots() {
        for kind in [DatasetKind::Dbp, DatasetKind::Lki, DatasetKind::Cite] {
            let params = WorkloadParams::default();
            let w = workload(kind, 600, &params);
            let root = Instantiation::root(&w.domains);
            let q = ConcreteQuery::materialize(&w.template, &w.domains, &root);
            let matches = match_output_set(&w.graph, &q, MatchOptions::default());
            let counts = w.groups.count_in_groups(&matches);
            assert!(
                is_feasible(&counts, &w.spec),
                "{}: root infeasible, counts {counts:?}, spec {:?}",
                w.name,
                w.spec.constraints()
            );
        }
    }

    #[test]
    fn instance_space_is_bounded_and_nontrivial() {
        let params = WorkloadParams {
            max_values_per_range_var: 8,
            ..WorkloadParams::default()
        };
        let w = workload(DatasetKind::Lki, 500, &params);
        let n = w.instance_space_size();
        assert!((16..=4000).contains(&n), "|I(Q)| = {n}");
    }

    #[test]
    fn group_counts_follow_params() {
        let params = WorkloadParams {
            groups: 4,
            ..WorkloadParams::default()
        };
        let dbp = workload(DatasetKind::Dbp, 500, &params);
        assert_eq!(dbp.groups.len(), 4);
        let lki = workload(DatasetKind::Lki, 300, &params);
        assert_eq!(lki.groups.len(), 2, "LKI always has two gender groups");
    }
}
