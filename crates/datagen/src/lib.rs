//! # fairsqg-datagen
//!
//! Synthetic datasets and workload generation for the FairSQG evaluation
//! (Section V). Three seeded generators stand in for the paper's real-life
//! graphs — see `DESIGN.md` for the substitution rationale:
//!
//! * [`movies_graph`] — DBP-like movie knowledge graph (genre groups),
//! * [`social_graph`] — LKI-like professional network (gender groups),
//! * [`citations_graph`] — Cite-like citation graph (topic groups),
//!
//! plus a template generator ([`generate_template`]) controlled by
//! `|Q(u_o)|`, `|X_L|`, `|X_E|`, and topology, and end-to-end workload
//! presets ([`workload`]) that reproduce the experiment settings of
//! Table II with feasibility-checked templates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod citations;
mod movies;
mod presets;
mod social;
mod stream;
mod templates;
mod util;

pub use citations::{citations_graph, topic_groups, CitationsConfig, TOPICS};
pub use movies::{genre_groups, movies_graph, MoviesConfig, COUNTRIES, GENRES};
pub use presets::{workload, CoverageMode, DatasetKind, Workload, WorkloadParams};
pub use social::{gender_groups, social_graph, SocialConfig, MAJORS};
pub use stream::{stream_tsv, stream_tsv_to_path, StreamStats};
pub use templates::{generate_template, generate_template_with_retry, TemplateSpec, Topology};
pub use util::{log_uniform, zipf, zipf_approx};
