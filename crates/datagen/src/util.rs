//! Seeded sampling utilities shared by the dataset generators.

use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// Creates the crate's canonical deterministic RNG from a seed.
pub fn rng(seed: u64) -> Pcg64Mcg {
    // Mix the seed so that nearby seeds diverge immediately.
    Pcg64Mcg::new(((seed as u128) << 64 | (seed as u128 ^ 0x9e3779b97f4a7c15)) | 1)
}

/// Samples an index in `0..n` with Zipf-like weights `1/(i+1)^s`.
///
/// Used to skew categorical attributes (genres, topics) the way real
/// catalogs are skewed — a handful of dominant categories and a long tail.
pub fn zipf<R: Rng>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Precomputing the CDF per call is fine: n is tiny (≤ ~40 categories).
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    n - 1
}

/// O(1) approximation of [`zipf`] for large `n` (the streaming emitters
/// sample among millions of nodes per edge, where the exact per-call CDF
/// is unaffordable). Uses the continuous inverse-CDF of the bounded
/// power law `w(i) ∝ (i+1)^-s`: head-skewed like `zipf`, but the exact
/// per-index probabilities differ slightly.
pub fn zipf_approx<R: Rng>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    let u = rng.gen_range(0.0..1.0f64);
    let nf = n as f64;
    let x = if (s - 1.0).abs() < 1e-9 {
        // s = 1: CDF(x) = ln(1+x) / ln(1+n).
        (1.0 + nf).powf(u) - 1.0
    } else {
        let p = 1.0 - s;
        // CDF(x) = ((1+x)^p - 1) / ((1+n)^p - 1).
        (u * ((1.0 + nf).powf(p) - 1.0) + 1.0).powf(1.0 / p) - 1.0
    };
    (x as usize).min(n - 1)
}

/// Samples an integer in `[lo, hi]` with a log-uniform distribution
/// (org sizes, citation counts).
pub fn log_uniform<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let x = rng.gen_range(llo..=lhi);
    (x.exp().round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_towards_head() {
        let mut r = rng(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[zipf(&mut r, 5, 1.0)] += 1;
        }
        assert!(
            counts[0] > counts[4] * 2,
            "head should dominate tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_approx_is_skewed_and_in_bounds() {
        let mut r = rng(3);
        for s in [0.6, 1.0, 1.4] {
            let mut head = 0usize;
            for _ in 0..4000 {
                let i = zipf_approx(&mut r, 1_000_000, s);
                assert!(i < 1_000_000);
                if i < 1000 {
                    head += 1;
                }
            }
            // The first 0.1% of indices must receive far more than 0.1%
            // of the mass.
            assert!(head > 200, "s={s}: head mass too small ({head}/4000)");
        }
        // Degenerate n=1 never panics.
        assert_eq!(zipf_approx(&mut r, 1, 1.0), 0);
    }

    #[test]
    fn log_uniform_respects_bounds() {
        let mut r = rng(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut r, 50, 5000);
            assert!((50..=5000).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: u64 = rng(7).gen();
        let b: u64 = rng(7).gen();
        let c: u64 = rng(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
