//! Seeded sampling utilities shared by the dataset generators.

use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// Creates the crate's canonical deterministic RNG from a seed.
pub fn rng(seed: u64) -> Pcg64Mcg {
    // Mix the seed so that nearby seeds diverge immediately.
    Pcg64Mcg::new(((seed as u128) << 64 | (seed as u128 ^ 0x9e3779b97f4a7c15)) | 1)
}

/// Samples an index in `0..n` with Zipf-like weights `1/(i+1)^s`.
///
/// Used to skew categorical attributes (genres, topics) the way real
/// catalogs are skewed — a handful of dominant categories and a long tail.
pub fn zipf<R: Rng>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Precomputing the CDF per call is fine: n is tiny (≤ ~40 categories).
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    n - 1
}

/// Samples an integer in `[lo, hi]` with a log-uniform distribution
/// (org sizes, citation counts).
pub fn log_uniform<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let x = rng.gen_range(llo..=lhi);
    (x.exp().round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_towards_head() {
        let mut r = rng(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[zipf(&mut r, 5, 1.0)] += 1;
        }
        assert!(
            counts[0] > counts[4] * 2,
            "head should dominate tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn log_uniform_respects_bounds() {
        let mut r = rng(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut r, 50, 5000);
            assert!((50..=5000).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: u64 = rng(7).gen();
        let b: u64 = rng(7).gen();
        let c: u64 = rng(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
