//! Query-template generation ("Queries and Templates", Section V):
//! produces templates with practical search conditions controlled by the
//! number of edges `|Q(u_o)|`, range variables `|X_L|`, edge variables
//! `|X_E|`, and topology.
//!
//! Templates are sampled **from the data graph**: a connected subgraph is
//! grown around a random output-labeled node and lifted to a template, so
//! the root instance is guaranteed to have matches.

use fairsqg_graph::{AttrId, AttrValue, CmpOp, Graph, LabelId, NodeId};
use fairsqg_query::{DomainConfig, QNodeId, QueryTemplate, RefinementDomains, TemplateBuilder};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// How the sampled template grows around the output node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Expand from any already-chosen node (general shapes).
    Random,
    /// Expand from the most recently added node (path-like).
    Path,
    /// Expand from the output node (star-like).
    Star,
}

/// Template-generation parameters.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Template size `|Q(u_o)|` in edges.
    pub edges: usize,
    /// Number of range variables `|X_L|`.
    pub range_vars: usize,
    /// Number of edge variables `|X_E|` (optional edges; `≤ edges`).
    pub edge_vars: usize,
    /// Topology of the sampled pattern.
    pub topology: Topology,
    /// Output node label (by name).
    pub output_label: String,
    /// Cap on constants per range variable (controls `|I(Q)|`).
    pub max_values_per_range_var: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TemplateSpec {
    /// The paper's default setting: `|Q| = 3`, `|X| = 3` (2 range + 1 edge).
    pub fn paper_default(output_label: &str, seed: u64) -> Self {
        Self {
            edges: 3,
            range_vars: 2,
            edge_vars: 1,
            topology: Topology::Random,
            output_label: output_label.to_string(),
            max_values_per_range_var: 8,
            seed,
        }
    }
}

/// Generates a template and its refinement domains, or `None` when the
/// graph cannot support the requested shape from the sampled seed node
/// (callers retry with a different seed).
pub fn generate_template(
    graph: &Graph,
    spec: &TemplateSpec,
) -> Option<(QueryTemplate, RefinementDomains)> {
    let mut rng = Pcg64Mcg::new(((spec.seed as u128) << 1) | 1);
    let output_label = graph.schema().find_node_label(&spec.output_label)?;
    let pool = graph.nodes_with_label(output_label);
    if pool.is_empty() {
        return None;
    }
    // Prefer a well-connected seed so the pattern can grow.
    let seed_node = *pool
        .choose_multiple(&mut rng, 16.min(pool.len()))
        .max_by_key(|&&v| graph.in_degree(v) + graph.out_degree(v))?;

    // Grow a connected subgraph of `edges` distinct edges.
    let mut chosen: Vec<NodeId> = vec![seed_node];
    let mut edges: Vec<(usize, usize, fairsqg_graph::EdgeLabelId)> = Vec::new();
    let mut attempts = 0;
    while edges.len() < spec.edges {
        attempts += 1;
        if attempts > 200 {
            return None;
        }
        let from_idx = match spec.topology {
            Topology::Star => 0,
            Topology::Path => chosen.len() - 1,
            Topology::Random => rng.gen_range(0..chosen.len()),
        };
        let w = chosen[from_idx];
        // Pick a random incident edge (either direction).
        let deg_out = graph.out_degree(w);
        let deg_in = graph.in_degree(w);
        if deg_out + deg_in == 0 {
            if spec.topology == Topology::Random {
                continue;
            }
            return None;
        }
        let pick = rng.gen_range(0..deg_out + deg_in);
        let (src_node, dst_node, label) = if pick < deg_out {
            let a = graph.out_neighbors(w)[pick];
            (w, a.to(), a.label())
        } else {
            let a = graph.in_neighbors(w)[pick - deg_out];
            (a.to(), w, a.label())
        };
        if src_node == dst_node {
            continue;
        }
        let idx_of = |v: NodeId, chosen: &mut Vec<NodeId>| -> usize {
            match chosen.iter().position(|&c| c == v) {
                Some(i) => i,
                None => {
                    chosen.push(v);
                    chosen.len() - 1
                }
            }
        };
        let si = idx_of(src_node, &mut chosen);
        let di = idx_of(dst_node, &mut chosen);
        if edges
            .iter()
            .any(|&(a, b, l)| a == si && b == di && l == label)
        {
            continue;
        }
        edges.push((si, di, label));
    }

    // Lift to a template. Node 0 (the seed) is the output node.
    let mut tb = TemplateBuilder::new();
    let qnodes: Vec<QNodeId> = chosen.iter().map(|&v| tb.node(graph.label(v))).collect();
    // Choose which edges become optional (guarded by edge variables).
    let mut optional = vec![false; edges.len()];
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.shuffle(&mut rng);
    for &i in order.iter().take(spec.edge_vars.min(edges.len())) {
        optional[i] = true;
    }
    for (i, &(s, d, l)) in edges.iter().enumerate() {
        if optional[i] {
            tb.optional_edge(qnodes[s], qnodes[d], l);
        } else {
            tb.edge(qnodes[s], qnodes[d], l);
        }
    }

    // Attach range variables on integer attributes with rich domains.
    let mut candidates: Vec<(usize, AttrId)> = Vec::new();
    for (i, &v) in chosen.iter().enumerate() {
        let label: LabelId = graph.label(v);
        for e in graph.tuple(v) {
            if matches!(e.value(), AttrValue::Int(_))
                && graph.domains().for_label(label, e.attr()).len() >= 3
            {
                candidates.push((i, e.attr()));
            }
        }
    }
    candidates.sort_by_key(|&(i, a)| (i, a.0));
    candidates.dedup();
    if candidates.len() < spec.range_vars {
        return None;
    }
    candidates.shuffle(&mut rng);
    for &(i, attr) in candidates.iter().take(spec.range_vars) {
        let op = if rng.gen_bool(0.75) {
            CmpOp::Ge
        } else {
            CmpOp::Le
        };
        tb.range_literal(qnodes[i], attr, op);
    }

    let template = tb.finish(qnodes[0]).ok()?;
    let domains = RefinementDomains::build(
        &template,
        graph,
        DomainConfig {
            max_values_per_range_var: spec.max_values_per_range_var,
        },
    );
    // Reject degenerate domains (a range var with only the wildcard).
    if domains.domains().iter().any(|d| d.len() < 2) {
        return None;
    }
    Some((template, domains))
}

/// Retries [`generate_template`] over consecutive seeds until one succeeds
/// and (optionally) a caller-provided acceptance check passes.
pub fn generate_template_with_retry(
    graph: &Graph,
    spec: &TemplateSpec,
    max_retries: usize,
    accept: impl Fn(&QueryTemplate, &RefinementDomains) -> bool,
) -> Option<(QueryTemplate, RefinementDomains)> {
    for attempt in 0..max_retries {
        let mut s = spec.clone();
        s.seed = spec.seed.wrapping_add(attempt as u64 * 0x9E37);
        if let Some((t, d)) = generate_template(graph, &s) {
            if accept(&t, &d) {
                return Some((t, d));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{movies_graph, MoviesConfig};
    use crate::social::{social_graph, SocialConfig};

    fn social() -> Graph {
        social_graph(SocialConfig {
            directors: 300,
            majority_share: 0.6,
            seed: 21,
        })
    }

    #[test]
    fn generates_requested_shape() {
        let g = social();
        let spec = TemplateSpec {
            edges: 3,
            range_vars: 2,
            edge_vars: 1,
            topology: Topology::Random,
            output_label: "director".into(),
            max_values_per_range_var: 6,
            seed: 13,
        };
        let (t, d) = generate_template_with_retry(&g, &spec, 50, |_, _| true).expect("template");
        assert_eq!(t.size(), 3);
        assert_eq!(t.range_var_count(), 2);
        assert_eq!(t.edge_var_count(), 1);
        assert_eq!(
            t.output_label(),
            g.schema().find_node_label("director").unwrap()
        );
        assert!(d.instance_space_size() >= 8);
    }

    #[test]
    fn star_topology_centers_on_output() {
        let g = social();
        let spec = TemplateSpec {
            edges: 3,
            range_vars: 1,
            edge_vars: 0,
            topology: Topology::Star,
            output_label: "director".into(),
            max_values_per_range_var: 4,
            seed: 3,
        };
        if let Some((t, _)) = generate_template_with_retry(&g, &spec, 50, |_, _| true) {
            let out = t.output();
            for e in t.edges() {
                assert!(e.src == out || e.dst == out, "star edge must touch u_o");
            }
        }
    }

    #[test]
    fn movie_templates_generate_too() {
        let g = movies_graph(MoviesConfig {
            movies: 400,
            seed: 77,
        });
        let spec = TemplateSpec::paper_default("movie", 5);
        let got = generate_template_with_retry(&g, &spec, 50, |_, _| true);
        assert!(got.is_some());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = social();
        let spec = TemplateSpec::paper_default("director", 9);
        let a = generate_template(&g, &spec);
        let b = generate_template(&g, &spec);
        match (a, b) {
            (Some((ta, da)), Some((tb, db))) => {
                assert_eq!(ta.size(), tb.size());
                assert_eq!(da.instance_space_size(), db.instance_space_size());
            }
            (None, None) => {}
            _ => panic!("non-deterministic template generation"),
        }
    }

    #[test]
    fn rejects_impossible_specs() {
        let g = social();
        let spec = TemplateSpec {
            edges: 2,
            range_vars: 50, // more range vars than attributes available
            edge_vars: 0,
            topology: Topology::Random,
            output_label: "director".into(),
            max_values_per_range_var: 4,
            seed: 1,
        };
        assert!(generate_template(&g, &spec).is_none());
        let spec2 = TemplateSpec {
            output_label: "nonexistent".into(),
            ..TemplateSpec::paper_default("x", 1)
        };
        assert!(generate_template(&g, &spec2).is_none());
    }
}
