//! Streaming TSV emitters for million-node presets.
//!
//! The in-memory generators ([`crate::movies_graph`] and friends) build a
//! full [`fairsqg_graph::Graph`] before anything can be written out, and
//! keep preferential-attachment pools proportional to the edge count. At
//! the million-node scale the storage pipeline targets, that is exactly
//! the memory spike the binary container exists to avoid — so these
//! emitters write the TSV text directly to a writer in **bounded
//! memory**: node lines first (dense ids, section order matching the
//! in-memory generators), then edge lines, never materializing a graph.
//!
//! Determinism without state: every node's attributes are computed from a
//! per-node RNG (`seed`, class, index), so the edge pass can re-derive
//! any node's attributes in O(1) instead of keeping them around. Two
//! deliberate simplifications versus the in-memory generators, both
//! documented per dataset: preferential attachment is approximated by
//! [`zipf_approx`] over the node index (early nodes are popular), and
//! Cite's `numberOfCitations` is synthesized from the same skew instead
//! of counting actual in-edges. Group induction (genres, genders,
//! topics) works unchanged on the loaded graphs.

use crate::presets::DatasetKind;
use crate::util::{log_uniform, rng, zipf, zipf_approx};
use rand::Rng;
use rand_pcg::Pcg64Mcg;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::citations::TOPICS;
use crate::movies::{COUNTRIES, GENRES};
use crate::social::MAJORS;

/// What a streaming emission produced (before TSV-level edge dedup:
/// loading collapses duplicate `(src, dst, label)` lines, so the loaded
/// edge count can be slightly below `edges`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Node lines written.
    pub nodes: u64,
    /// Edge lines written.
    pub edges: u64,
}

/// Per-(class, index) deterministic RNG: both passes recompute a node's
/// draws from scratch instead of storing them.
fn sub_rng(seed: u64, class: u64, index: u64) -> Pcg64Mcg {
    rng(seed
        ^ class.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Emits the TSV for `kind` at `scale` output-label nodes to `out`.
///
/// The text parses with [`fairsqg_graph::read_tsv`] and converts with the
/// store's streaming converter; chaining the two never holds more than
/// O(nodes) index state in memory.
pub fn stream_tsv<W: Write>(
    kind: DatasetKind,
    scale: usize,
    seed: u64,
    out: &mut W,
) -> io::Result<StreamStats> {
    match kind {
        DatasetKind::Dbp => stream_dbp(scale, seed, out),
        DatasetKind::Lki => stream_lki(scale, seed, out),
        DatasetKind::Cite => stream_cite(scale, seed, out),
    }
}

/// [`stream_tsv`] to a file path (buffered, synced).
pub fn stream_tsv_to_path(
    kind: DatasetKind,
    scale: usize,
    seed: u64,
    path: &Path,
) -> io::Result<StreamStats> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    let stats = stream_tsv(kind, scale, seed, &mut out)?;
    out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    Ok(stats)
}

fn node_header<W: Write>(out: &mut W) -> io::Result<()> {
    writeln!(out, "# nodes: id\tlabel\tattr=value ...")
}

fn edge_header<W: Write>(out: &mut W) -> io::Result<()> {
    writeln!(out)?;
    writeln!(out, "# edges: src\tlabel\tdst")
}

/// DBP-like movie graph, schema-compatible with [`crate::movies_graph`]
/// (labels `country`/`director`/`actor`/`movie`, genre and country
/// symbols, the genre–rating correlation). Director/actor popularity is
/// index-skewed instead of pool-based.
fn stream_dbp<W: Write>(scale: usize, seed: u64, out: &mut W) -> io::Result<StreamStats> {
    let n_movies = scale.max(1);
    let n_directors = (n_movies / 5).max(2);
    let n_actors = (n_movies * 2).max(4);
    let n_countries = COUNTRIES.len();
    // Dense id layout, in emission order.
    let country_id = |i: usize| i as u64;
    let director_id = |i: usize| (n_countries + i) as u64;
    let actor_id = |i: usize| (n_countries + n_directors + i) as u64;
    let movie_id = |i: usize| (n_countries + n_directors + n_actors + i) as u64;

    node_header(out)?;
    for (i, name) in COUNTRIES.iter().enumerate() {
        writeln!(
            out,
            "{}\tcountry\tgdpRank={}\tname=s:{name}",
            country_id(i),
            i + 1
        )?;
    }
    for i in 0..n_directors {
        let r = &mut sub_rng(seed, 1, i as u64);
        let awards = zipf(r, 11, 1.2);
        let years = r.gen_range(1..40i64);
        writeln!(
            out,
            "{}\tdirector\tawards={awards}\tyearsActive={years}",
            director_id(i)
        )?;
    }
    for i in 0..n_actors {
        let r = &mut sub_rng(seed, 2, i as u64);
        let age = r.gen_range(18..80i64);
        let awards = zipf(r, 8, 1.5);
        writeln!(out, "{}\tactor\tage={age}\tawards={awards}", actor_id(i))?;
    }
    for i in 0..n_movies {
        let r = &mut sub_rng(seed, 3, i as u64);
        let genre_idx = zipf(r, GENRES.len(), 0.8);
        let genre_bias = match genre_idx {
            0 => -8,
            4 => 10,
            g => (g as i64 % 5) * 3 - 6,
        };
        let rating: i64 =
            ((0..4).map(|_| r.gen_range(0..=25i64)).sum::<i64>() + genre_bias).clamp(0, 100);
        let year = r.gen_range(1950..=2023i64);
        let votes = log_uniform(r, 10, 2_000_000) as i64 + if genre_idx == 0 { 50_000 } else { 0 };
        writeln!(
            out,
            "{}\tmovie\tgenre=s:{}\trating={rating}\tyear={year}\tvotes={votes}",
            movie_id(i),
            GENRES[genre_idx]
        )?;
    }

    edge_header(out)?;
    let mut edges = 0u64;
    for i in 0..n_movies {
        let r = &mut sub_rng(seed, 4, i as u64);
        let d = zipf_approx(r, n_directors, 0.7);
        writeln!(out, "{}\tdirected\t{}", director_id(d), movie_id(i))?;
        let c = zipf(r, n_countries, 0.9);
        writeln!(out, "{}\tproducedIn\t{}", movie_id(i), country_id(c))?;
        edges += 2;
        for _ in 0..3 + (i % 4) {
            let a = zipf_approx(r, n_actors, 0.6);
            writeln!(out, "{}\tactedIn\t{}", actor_id(a), movie_id(i))?;
            edges += 1;
        }
    }
    for i in 0..n_actors {
        let r = &mut sub_rng(seed, 5, i as u64);
        let c = zipf(r, n_countries, 0.9);
        writeln!(out, "{}\tbornIn\t{}", actor_id(i), country_id(c))?;
        edges += 1;
    }
    Ok(StreamStats {
        nodes: (n_countries + n_directors + n_actors + n_movies) as u64,
        edges,
    })
}

/// LKI-like professional network, schema-compatible with
/// [`crate::social_graph`] (65% majority gender, experience-biased
/// recommendations toward the minority group). The edge pass re-derives
/// each director's gender and each user's seniority from their per-node
/// RNGs; minority targets are rejection-sampled.
fn stream_lki<W: Write>(scale: usize, seed: u64, out: &mut W) -> io::Result<StreamStats> {
    const MAJORITY_SHARE: f64 = 0.65;
    let n_dir = scale.max(2);
    let n_users = n_dir * 3;
    let n_orgs = (n_dir / 10).max(5);
    let director_id = |i: usize| i as u64;
    let user_id = |i: usize| (n_dir + i) as u64;
    let org_id = |i: usize| (n_dir + n_users + i) as u64;

    // First draw of a director's RNG; the edge pass repeats it.
    let gender_of = |i: usize| -> i64 {
        if sub_rng(seed, 1, i as u64).gen_bool(MAJORITY_SHARE) {
            0
        } else {
            1
        }
    };
    // First draw of a user's RNG.
    let exp_of = |i: usize| -> i64 { sub_rng(seed, 2, i as u64).gen_range(0..31i64) };

    node_header(out)?;
    for i in 0..n_dir {
        let r = &mut sub_rng(seed, 1, i as u64);
        let gender: i64 = if r.gen_bool(MAJORITY_SHARE) { 0 } else { 1 };
        let major = r.gen_range(0..MAJORS);
        let exp = r.gen_range(0..35i64);
        writeln!(
            out,
            "{}\tdirector\tgender={gender}\tmajor={major}\tyearsOfExp={exp}",
            director_id(i)
        )?;
    }
    for i in 0..n_users {
        let r = &mut sub_rng(seed, 2, i as u64);
        let exp = r.gen_range(0..31i64);
        let endorsements = zipf(r, 50, 1.1);
        writeln!(
            out,
            "{}\tuser\tyearsOfExp={exp}\tendorsements={endorsements}",
            user_id(i)
        )?;
    }
    for i in 0..n_orgs {
        let r = &mut sub_rng(seed, 3, i as u64);
        let employees = log_uniform(r, 10, 20_000);
        let founded = r.gen_range(1950..=2020i64);
        writeln!(
            out,
            "{}\torg\temployees={employees}\tfounded={founded}",
            org_id(i)
        )?;
    }

    edge_header(out)?;
    let mut edges = 0u64;
    for i in 0..n_users {
        let r = &mut sub_rng(seed, 4, i as u64);
        let senior = exp_of(i) >= 15;
        let fanout = 2 + zipf(r, 5, 1.0);
        for _ in 0..fanout {
            let mut d = zipf_approx(r, n_dir, 0.8);
            if senior && r.gen_bool(0.6) {
                // Rejection-sample a minority-gender director (~35% of the
                // population, so a handful of tries almost always lands).
                for _ in 0..16 {
                    if gender_of(d) == 1 {
                        break;
                    }
                    d = r.gen_range(0..n_dir);
                }
            }
            writeln!(out, "{}\trecommend\t{}", user_id(i), director_id(d))?;
            edges += 1;
        }
        let o = zipf_approx(r, n_orgs, 0.8);
        writeln!(out, "{}\tworksAt\t{}", user_id(i), org_id(o))?;
        edges += 1;
        if i % 3 == 0 {
            let v = r.gen_range(0..n_users);
            if v != i {
                writeln!(out, "{}\tcoReview\t{}", user_id(i), user_id(v))?;
                edges += 1;
            }
        }
    }
    Ok(StreamStats {
        nodes: (n_dir + n_users + n_orgs) as u64,
        edges,
    })
}

/// Cite-like citation graph, schema-compatible with
/// [`crate::citations_graph`] (topic symbols, backward-in-time `cites`
/// edges, head-topic citation boost). `numberOfCitations` is synthesized
/// from the same index skew the edge pass samples with, not counted from
/// actual in-edges — the topic correlation survives, the exact in-degree
/// invariant does not.
fn stream_cite<W: Write>(scale: usize, seed: u64, out: &mut W) -> io::Result<StreamStats> {
    let n_papers = scale.max(2);
    let n_authors = (n_papers / 2).max(2);
    let author_id = |i: usize| i as u64;
    let paper_id = |i: usize| (n_authors + i) as u64;

    // First draw of a paper's RNG; the edge pass repeats it.
    let topic_of = |i: usize| -> usize { zipf(&mut sub_rng(seed, 2, i as u64), TOPICS.len(), 0.7) };

    node_header(out)?;
    for i in 0..n_authors {
        let r = &mut sub_rng(seed, 1, i as u64);
        let h = zipf(r, 60, 1.1);
        let np = 1 + zipf(r, 30, 1.0);
        writeln!(out, "{}\tauthor\thIndex={h}\tpapers={np}", author_id(i))?;
    }
    for i in 0..n_papers {
        let r = &mut sub_rng(seed, 2, i as u64);
        let topic = zipf(r, TOPICS.len(), 0.7);
        let year = 1980 + (i as i64 * 44) / n_papers as i64;
        // Early papers accumulate citations (the edge pass skews toward
        // low indices); the head topic gets the same boost its targets do.
        let age_rank = n_papers - i;
        let mut citations = log_uniform(r, 1, (age_rank as u64 / 8).max(2)) as i64 - 1;
        if topic == 0 {
            citations += citations / 2 + 1;
        }
        writeln!(
            out,
            "{}\tpaper\ttopic=s:{}\tyear={year}\tnumberOfCitations={citations}",
            paper_id(i),
            TOPICS[topic]
        )?;
    }

    edge_header(out)?;
    let mut edges = 0u64;
    for i in 0..n_papers {
        let r = &mut sub_rng(seed, 3, i as u64);
        if i > 0 {
            let refs = 2 + zipf(r, 8, 1.0);
            for _ in 0..refs {
                let mut t = if r.gen_bool(0.3) {
                    r.gen_range(0..i)
                } else {
                    // Preferential-attachment proxy: early papers are the
                    // popular ones.
                    zipf_approx(r, i, 0.8)
                };
                if r.gen_bool(0.25) {
                    // Head-topic boost, rejection-sampled (the head topic
                    // holds roughly a third of the Zipf mass).
                    for _ in 0..16 {
                        if topic_of(t) == 0 {
                            break;
                        }
                        t = r.gen_range(0..i);
                    }
                }
                writeln!(out, "{}\tcites\t{}", paper_id(i), paper_id(t))?;
                edges += 1;
            }
        }
        let k = 1 + zipf(r, 4, 1.0);
        for _ in 0..k {
            let a = zipf_approx(r, n_authors, 0.8);
            writeln!(out, "{}\tauthored\t{}", author_id(a), paper_id(i))?;
            edges += 1;
        }
    }
    Ok(StreamStats {
        nodes: (n_authors + n_papers) as u64,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gender_groups, genre_groups, topic_groups};
    use fairsqg_graph::read_tsv;
    use std::io::BufReader;

    fn emit(kind: DatasetKind, scale: usize, seed: u64) -> (Vec<u8>, StreamStats) {
        let mut buf = Vec::new();
        let stats = stream_tsv(kind, scale, seed, &mut buf).unwrap();
        (buf, stats)
    }

    #[test]
    fn emitted_tsv_parses_and_matches_stats() {
        for kind in [DatasetKind::Dbp, DatasetKind::Lki, DatasetKind::Cite] {
            let (buf, stats) = emit(kind, 300, 7);
            let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
            assert_eq!(g.node_count() as u64, stats.nodes, "{}", kind.name());
            // TSV-level duplicate edges collapse on load.
            assert!(g.edge_count() as u64 <= stats.edges);
            assert!(
                g.edge_count() as u64 > stats.edges / 2,
                "{}: {} of {} edge lines survived dedup",
                kind.name(),
                g.edge_count(),
                stats.edges
            );
            let out_label = g.schema().find_node_label(kind.output_label()).unwrap();
            assert_eq!(g.label_population(out_label), 300);
        }
    }

    #[test]
    fn emission_is_deterministic() {
        for kind in [DatasetKind::Dbp, DatasetKind::Lki, DatasetKind::Cite] {
            let (a, _) = emit(kind, 120, 11);
            let (b, _) = emit(kind, 120, 11);
            assert_eq!(a, b, "{}", kind.name());
            let (c, _) = emit(kind, 120, 12);
            assert_ne!(a, c, "{}: seed must matter", kind.name());
        }
    }

    #[test]
    fn group_induction_works_on_streamed_graphs() {
        let (buf, _) = emit(DatasetKind::Dbp, 500, 3);
        let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        let groups = genre_groups(&g, 3);
        assert_eq!(groups.len(), 3);
        for i in 0..3 {
            assert!(groups.size(fairsqg_graph::GroupId(i)) > 0);
        }

        let (buf, _) = emit(DatasetKind::Lki, 500, 3);
        let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        let groups = gender_groups(&g);
        let a = groups.size(fairsqg_graph::GroupId(0)) as f64;
        let b = groups.size(fairsqg_graph::GroupId(1)) as f64;
        let share = a / (a + b);
        assert!((share - 0.65).abs() < 0.07, "gender share {share}");

        let (buf, _) = emit(DatasetKind::Cite, 500, 3);
        let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        let groups = topic_groups(&g, 3);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn citations_point_backwards_in_time() {
        let (buf, _) = emit(DatasetKind::Cite, 250, 5);
        let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        let year = g.schema().find_attr("year").unwrap();
        let cites = g.schema().find_edge_label("cites").unwrap();
        for v in g.nodes() {
            for a in g.out_neighbors(v) {
                if a.label() == cites {
                    assert!(g.attr(a.to(), year).unwrap() <= g.attr(v, year).unwrap());
                }
            }
        }
    }

    #[test]
    fn senior_recommendations_favor_the_minority_group() {
        let (buf, _) = emit(DatasetKind::Lki, 1000, 13);
        let g = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        let s = g.schema();
        let user = s.find_node_label("user").unwrap();
        let gender = s.find_attr("gender").unwrap();
        let exp = s.find_attr("yearsOfExp").unwrap();
        let recommend = s.find_edge_label("recommend").unwrap();
        let mut senior = (0u32, 0u32);
        let mut junior = (0u32, 0u32);
        for &u in g.nodes_with_label(user) {
            let is_senior = g.attr(u, exp).unwrap().as_int().unwrap() >= 15;
            for a in g.out_neighbors(u) {
                if a.label() != recommend {
                    continue;
                }
                if let Some(val) = g.attr(a.to(), gender) {
                    let slot = if is_senior { &mut senior } else { &mut junior };
                    slot.1 += 1;
                    if val == fairsqg_graph::AttrValue::Int(1) {
                        slot.0 += 1;
                    }
                }
            }
        }
        let senior_share = senior.0 as f64 / senior.1 as f64;
        let junior_share = junior.0 as f64 / junior.1 as f64;
        assert!(
            senior_share > junior_share + 0.15,
            "senior minority share {senior_share} vs junior {junior_share}"
        );
    }
}
