//! `RfQGen` (Fig. 3): depth-first "refine as always" query generation.
//!
//! Starts from the lattice root `q_r` (the most relaxed instance) and
//! explores refinements depth-first. Each feasible instance is offered to
//! the `Update` archive; infeasible instances cut their whole refinement
//! subtree (Lemma 2: refinement only shrinks match sets, so no descendant
//! can become feasible again).

use crate::archive::EpsParetoArchive;
use crate::config::{Configuration, GenStats};
use crate::evaluator::Evaluator;
use crate::output::{AnytimePoint, Generated};
use crate::spawn::{spawn_refinements, SpawnOptions};
use fairsqg_query::Instantiation;
use std::collections::HashSet;
use std::time::Instant;

/// Options of the refinement-driven generator.
#[derive(Debug, Clone, Copy)]
pub struct RfQGenOptions {
    /// Spawner behavior (template refinement on/off).
    pub spawn: SpawnOptions,
    /// Record the anytime-quality trace.
    pub collect_anytime: bool,
    /// Use incremental verification against cached lattice parents.
    pub inc_verify: bool,
}

impl Default for RfQGenOptions {
    fn default() -> Self {
        Self {
            spawn: SpawnOptions::default(),
            collect_anytime: false,
            inc_verify: true,
        }
    }
}

/// Runs `RfQGen` on a configuration.
pub fn rfqgen(cfg: Configuration<'_>, opts: RfQGenOptions) -> Generated {
    let start = Instant::now();
    let mut ev = Evaluator::new(cfg);
    let mut archive = EpsParetoArchive::new(cfg.eps);
    let mut anytime = Vec::new();
    let mut stats = GenStats::default();

    let root = Instantiation::root(cfg.domains);
    let mut visited: HashSet<Instantiation> = HashSet::new();
    let mut stack: Vec<Instantiation> = vec![root];
    stats.spawned = 1;
    let mut truncated = false;

    while let Some(inst) = stack.pop() {
        if ev.should_stop() {
            truncated = true;
            break;
        }
        if !visited.insert(inst.clone()) {
            continue;
        }
        // Certain infeasibility is detectable from the candidate set alone
        // — prune the subtree without paying the matching cost T_q.
        if ev.quick_infeasible(&inst) {
            stats.pruned_infeasible += 1;
            continue;
        }
        let result = if opts.inc_verify {
            ev.verify_with_best_parent(&inst)
        } else {
            ev.verify(&inst)
        };
        if !result.feasible {
            // Lemma 2: every refinement of an infeasible instance is
            // infeasible — backtrack.
            stats.pruned_infeasible += 1;
            continue;
        }
        cfg.offer(&mut archive, &inst, &result);
        if opts.collect_anytime {
            anytime.push(AnytimePoint {
                verified: ev.verified_count(),
                delta_star: archive
                    .entries()
                    .iter()
                    .map(|e| e.objectives().delta)
                    .fold(0.0, f64::max),
                f_star: archive
                    .entries()
                    .iter()
                    .map(|e| e.objectives().fcov)
                    .fold(0.0, f64::max),
            });
        }
        // Spawn the front set Q_F and continue depth-first.
        for (_, child) in spawn_refinements(&cfg, &inst, &result, opts.spawn) {
            if !visited.contains(&child) {
                stats.spawned += 1;
                stack.push(child);
            }
        }
    }

    stats.verified = ev.verified_count();
    stats.cache_hits = ev.cache_hit_count();
    stats.elapsed = start.elapsed();
    stats.budget_tripped = ev.budget_tripped();
    stats.threads_used = 1;
    ev.apply_hot_path_stats(&mut stats);
    truncated |= stats.budget_tripped.is_some();
    Generated {
        entries: archive.entries().to_vec(),
        eps: cfg.eps,
        stats,
        anytime,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enum_qgen, evaluate_universe};
    use crate::test_support::talent_fixture;
    use fairsqg_measures::Objectives;

    #[test]
    fn rfqgen_produces_valid_eps_pareto_set() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = rfqgen(cfg, RfQGenOptions::default());
        assert!(!out.entries.is_empty());

        // Validity over the whole feasible universe (stronger than the
        // paper's per-generated-instance claim, possible here because the
        // fixture's universe is small).
        let mut ev = Evaluator::new(cfg);
        let feasible: Vec<Objectives> = evaluate_universe(&mut ev)
            .into_iter()
            .filter(|(_, r)| r.feasible)
            .map(|(_, r)| r.objectives)
            .collect();
        let mut a = EpsParetoArchive::new(cfg.eps);
        for e in &out.entries {
            a.update(&e.inst, &e.result);
        }
        assert!(a.covers_shifted(&feasible));
    }

    #[test]
    fn rfqgen_verifies_fewer_instances_than_enum() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let rf = rfqgen(cfg, RfQGenOptions::default());
        let en = enum_qgen(cfg, false);
        assert!(
            rf.stats.verified <= en.stats.verified,
            "RfQGen ({}) must not verify more than EnumQGen ({})",
            rf.stats.verified,
            en.stats.verified
        );
    }

    #[test]
    fn template_refinement_does_not_change_the_result_quality() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let with_tr = rfqgen(cfg, RfQGenOptions::default());
        let without_tr = rfqgen(
            cfg,
            RfQGenOptions {
                spawn: SpawnOptions {
                    template_refinement: false,
                    ..SpawnOptions::default()
                },
                ..RfQGenOptions::default()
            },
        );
        // Both archives must cover each other's entries under ε.
        let a_objs = with_tr.objectives();
        let b_objs = without_tr.objectives();
        let mut a = EpsParetoArchive::new(cfg.eps);
        for e in &with_tr.entries {
            a.update(&e.inst, &e.result);
        }
        let mut b = EpsParetoArchive::new(cfg.eps);
        for e in &without_tr.entries {
            b.update(&e.inst, &e.result);
        }
        assert!(a.covers_shifted(&b_objs));
        assert!(b.covers_shifted(&a_objs));
    }

    #[test]
    fn inc_verify_matches_full_verify() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let inc = rfqgen(cfg, RfQGenOptions::default());
        let full = rfqgen(
            cfg,
            RfQGenOptions {
                inc_verify: false,
                ..RfQGenOptions::default()
            },
        );
        let mut io: Vec<_> = inc
            .entries
            .iter()
            .map(|e| (e.objectives().delta, e.objectives().fcov))
            .collect();
        let mut fo: Vec<_> = full
            .entries
            .iter()
            .map(|e| (e.objectives().delta, e.objectives().fcov))
            .collect();
        io.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fo.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(io.len(), fo.len());
        for (a, b) in io.iter().zip(fo.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn anytime_trace_is_recorded() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = rfqgen(
            cfg,
            RfQGenOptions {
                collect_anytime: true,
                ..RfQGenOptions::default()
            },
        );
        assert!(!out.anytime.is_empty());
        assert!(out
            .anytime
            .windows(2)
            .all(|w| w[0].verified <= w[1].verified));
    }
}
