//! `CBM` — the constraint-based bi-objective baseline [10] used in the
//! paper's Exp-1 comparison.
//!
//! CBM first computes the two *anchor points* (the feasible instance of
//! maximum diversity and the one of maximum coverage), then bisects the
//! coverage range between them with a fixed vertical separation: each
//! subproblem is a single-objective optimization
//! `max δ(q)  s.t.  f(q) ≥ θ` solved over the enumerated instance space.
//! The union of subproblem optima approximates the Pareto frontier.
//!
//! As the paper observes, CBM pays an enumeration *per subproblem*
//! ("a more expensive bi-level optimization procedure"), which is why the
//! `Kungs` baseline outperforms it by ~1.2× despite producing comparable
//! fronts.

use crate::archive::ArchiveEntry;
use crate::config::{Configuration, GenStats};
use crate::evaluator::{EvalResult, Evaluator};
use crate::output::Generated;
use fairsqg_query::Instantiation;
use std::rc::Rc;
use std::time::Instant;

/// Options of the CBM baseline.
#[derive(Debug, Clone, Copy)]
pub struct CbmOptions {
    /// Number of ε-constraint subproblems between the anchors.
    pub subproblems: usize,
}

impl Default for CbmOptions {
    fn default() -> Self {
        Self { subproblems: 16 }
    }
}

/// Runs CBM on a configuration.
pub fn cbm(cfg: Configuration<'_>, opts: CbmOptions) -> Generated {
    let start = Instant::now();
    // CBM is a *bi-level* method: the anchor solves and the ε-constraint
    // sweep are independent single-objective optimizations [10]. Ported
    // faithfully, each level evaluates the instance space with its own
    // verifier (no shared memoization across levels), which is why the
    // paper reports Kungs outperforming CBM (~1.2×) despite equal fronts.
    let mut anchor_ev = Evaluator::new(cfg);
    let (_anchor_pass, cut_anchor) =
        crate::enumerate::evaluate_universe_cancellable(&mut anchor_ev);
    let mut ev = Evaluator::new(cfg);
    let (universe, cut_sweep) = crate::enumerate::evaluate_universe_cancellable(&mut ev);
    let truncated = cut_anchor || cut_sweep;
    let feasible: Vec<(Instantiation, Rc<EvalResult>)> =
        universe.into_iter().filter(|(_, r)| r.feasible).collect();

    let mut selected: Vec<(Instantiation, Rc<EvalResult>)> = Vec::new();
    if !feasible.is_empty() {
        // Anchor points.
        let max_delta = feasible
            .iter()
            .max_by(|a, b| {
                a.1.objectives
                    .delta
                    .partial_cmp(&b.1.objectives.delta)
                    .unwrap()
            })
            .unwrap();
        let max_f = feasible
            .iter()
            .max_by(|a, b| {
                a.1.objectives
                    .fcov
                    .partial_cmp(&b.1.objectives.fcov)
                    .unwrap()
            })
            .unwrap();
        selected.push(max_delta.clone());
        if max_f.0 != max_delta.0 {
            selected.push(max_f.clone());
        }

        // ε-constraint subproblems at evenly spaced coverage thresholds
        // (the "fixed vertical separation distance" of [10]). Each
        // subproblem re-scans the feasible space — CBM's bi-level cost.
        let f_lo = max_delta.1.objectives.fcov;
        let f_hi = max_f.1.objectives.fcov;
        if f_hi > f_lo && opts.subproblems > 0 {
            for s in 1..=opts.subproblems {
                let theta = f_lo + (f_hi - f_lo) * s as f64 / (opts.subproblems + 1) as f64;
                if let Some(best) = feasible
                    .iter()
                    .filter(|(_, r)| r.objectives.fcov >= theta)
                    .max_by(|a, b| {
                        a.1.objectives
                            .delta
                            .partial_cmp(&b.1.objectives.delta)
                            .unwrap()
                    })
                {
                    if !selected.iter().any(|(i, _)| *i == best.0) {
                        selected.push(best.clone());
                    }
                }
            }
        }
    }

    // Keep only mutually non-dominated picks (the anchors can dominate
    // interior subproblem optima).
    let objectives: Vec<_> = selected.iter().map(|(_, r)| r.objectives).collect();
    let front = fairsqg_measures::kung_pareto(&objectives);
    let entries = front
        .into_iter()
        .map(|i| {
            let (inst, r) = &selected[i];
            ArchiveEntry {
                inst: inst.clone(),
                result: Rc::clone(r),
                bx: r.objectives.boxed(cfg.eps),
            }
        })
        .collect();

    let mut stats = GenStats {
        spawned: feasible.len() as u64,
        verified: anchor_ev.verified_count() + ev.verified_count(),
        cache_hits: anchor_ev.cache_hit_count() + ev.cache_hit_count(),
        elapsed: start.elapsed(),
        budget_tripped: anchor_ev.budget_tripped().or(ev.budget_tripped()),
        threads_used: 1,
        ..GenStats::default()
    };
    // Matcher counters are thread-local and monotone, so the delta since
    // the *first* evaluator's baseline already spans both levels; only the
    // second level's measure cache still needs folding in.
    anchor_ev.apply_hot_path_stats(&mut stats);
    let sweep_measure = ev.measure().cache_stats();
    stats.distance_cache_hits += sweep_measure.distance_hits;
    stats.distance_cache_misses += sweep_measure.distance_misses;
    Generated {
        entries,
        eps: cfg.eps,
        stats,
        anytime: Vec::new(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::kungs;
    use crate::test_support::talent_fixture;

    #[test]
    fn cbm_selects_non_dominated_instances() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = cbm(cfg, CbmOptions::default());
        assert!(!out.entries.is_empty());
        for a in &out.entries {
            for b in &out.entries {
                assert!(!a.objectives().dominates(&b.objectives()));
            }
        }
    }

    #[test]
    fn cbm_anchors_match_kungs_extremes() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let c = cbm(cfg, CbmOptions::default());
        let k = kungs(cfg);
        let max = |g: &Generated, f: fn(&ArchiveEntry) -> f64| {
            g.entries.iter().map(f).fold(0.0, f64::max)
        };
        assert!(
            (max(&c, |e| e.objectives().delta) - max(&k, |e| e.objectives().delta)).abs() < 1e-9
        );
        assert!((max(&c, |e| e.objectives().fcov) - max(&k, |e| e.objectives().fcov)).abs() < 1e-9);
    }

    #[test]
    fn cbm_front_is_subset_of_exact_pareto() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let c = cbm(cfg, CbmOptions::default());
        let k = kungs(cfg);
        let kset: Vec<_> = k.objectives();
        for e in &c.entries {
            // Every CBM pick must be non-dominated by the exact front.
            assert!(kset.iter().all(|o| !o.dominates(&e.objectives())));
        }
        assert!(c.entries.len() <= k.entries.len());
    }
}
