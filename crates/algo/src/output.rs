//! Common output types of the generation algorithms.

use crate::archive::ArchiveEntry;
use crate::config::GenStats;

/// A point on an algorithm's anytime-quality curve: the best diversity and
/// coverage present in the maintained set after `verified` verifications
/// (drives the R-indicator convergence experiment, Fig. 9(e)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimePoint {
    /// Number of instances verified so far.
    pub verified: u64,
    /// Best diversity `δ*` in the maintained set.
    pub delta_star: f64,
    /// Best coverage `f*` in the maintained set.
    pub f_star: f64,
}

/// The result of a generation run.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The returned instance set (ε-Pareto set, or the exact Pareto set for
    /// the `Kungs` baseline).
    pub entries: Vec<ArchiveEntry>,
    /// The ε the set conforms to (may have grown for the online algorithm).
    pub eps: f64,
    /// Run statistics.
    pub stats: GenStats,
    /// Anytime-quality trace (one point per `Update` invocation); empty when
    /// tracing was disabled.
    pub anytime: Vec<AnytimePoint>,
    /// `true` when the run stopped early because its
    /// [`CancelToken`](crate::CancelToken) fired (deadline or explicit
    /// cancellation); `entries` is then the partial ε-Pareto archive built
    /// so far.
    pub truncated: bool,
}

impl Generated {
    /// The objective coordinates of the returned set.
    pub fn objectives(&self) -> Vec<fairsqg_measures::Objectives> {
        self.entries.iter().map(|e| e.objectives()).collect()
    }

    /// Best diversity in the returned set.
    pub fn delta_star(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.objectives().delta)
            .fold(0.0, f64::max)
    }

    /// Best coverage in the returned set.
    pub fn f_star(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.objectives().fcov)
            .fold(0.0, f64::max)
    }
}
