//! Procedure `Spawn` (Section IV-A): constructs the refined children of a
//! verified instance, with **template refinement** against the `d`-hop
//! neighborhood `G_q^d` of the current match set.
//!
//! Template refinement (paper, "Template refinement"):
//!
//! 1. a range variable `u.A op x` only steps to constants that actually
//!    occur as `w.A` on some node `w ∈ G_q^d` with `L(w) = L(u)` — binding
//!    any skipped in-between constant yields the *same* match set, hence the
//!    same objectives, so nothing Pareto-relevant is lost;
//! 2. an edge variable `x_e` on `e = (u, u')` is "fixed to 0" (never
//!    refined to 1) when no `L_Q(e)`-labeled edge connects suitable nodes in
//!    `G_q^d` — the refined instance could not match anything.

use crate::config::Configuration;
use crate::evaluator::EvalResult;
use fairsqg_graph::AttrValue;
use fairsqg_query::{DomainValue, Instantiation, VarKind};
use std::collections::HashSet;

/// Spawner options.
#[derive(Debug, Clone, Copy)]
pub struct SpawnOptions {
    /// Enable template refinement (`G_q^d` domain restriction).
    pub template_refinement: bool,
    /// Skip the neighborhood computation when the match set exceeds this
    /// size (the BFS would touch most of the graph anyway). `0` = no limit.
    pub neighborhood_seed_cap: usize,
}

impl Default for SpawnOptions {
    fn default() -> Self {
        Self {
            template_refinement: true,
            neighborhood_seed_cap: 4096,
        }
    }
}

/// Spawns the refined children of `inst` (one per refinable variable),
/// returning `(stepped variable, child)` pairs.
pub fn spawn_refinements(
    cfg: &Configuration<'_>,
    inst: &Instantiation,
    result: &EvalResult,
    opts: SpawnOptions,
) -> Vec<(usize, Instantiation)> {
    if !opts.template_refinement
        || result.matches.is_empty()
        || (opts.neighborhood_seed_cap > 0 && result.matches.len() > opts.neighborhood_seed_cap)
    {
        return plain_refinements(cfg, inst);
    }

    // G_q^d: d-hop neighborhood of the match set, d = template diameter.
    let d = cfg.template.diameter();
    let hood = cfg.graph.d_hop_neighborhood(&result.matches, d);

    let mut children = Vec::new();
    for (x, dom) in cfg.domains.domains().iter().enumerate() {
        match dom.kind {
            VarKind::Range { literal } => {
                let lit = cfg.template.range_literals()[literal];
                let label = cfg.template.nodes()[lit.node.index()].label;
                // Values of `lit.attr` on same-labeled neighborhood nodes.
                let observed: HashSet<AttrValue> = hood
                    .iter()
                    .filter(|&&w| cfg.graph.label(w) == label)
                    .filter_map(|&w| cfg.graph.attr(w, lit.attr))
                    .collect();
                // First more-refined index whose constant is observed.
                let mut cursor = inst.clone();
                while let Some(next) = cursor.refine_step(x, cfg.domains) {
                    let keep = match next.value(x, cfg.domains) {
                        DomainValue::Const(c) => observed.contains(c),
                        _ => true,
                    };
                    if keep {
                        children.push((x, next));
                        break;
                    }
                    cursor = next;
                }
            }
            VarKind::Edge { edge } => {
                if let Some(next) = inst.refine_step(x, cfg.domains) {
                    let e = cfg.template.edges()[edge];
                    let src_label = cfg.template.nodes()[e.src.index()].label;
                    let dst_label = cfg.template.nodes()[e.dst.index()].label;
                    // "Fix x_e to 0" when no suitable edge exists in G_q^d.
                    let hood_set: HashSet<_> = hood.iter().copied().collect();
                    let exists = hood
                        .iter()
                        .filter(|&&w| cfg.graph.label(w) == src_label)
                        .any(|&w| {
                            cfg.graph.out_neighbors(w).iter().any(|a| {
                                a.label() == e.label
                                    && cfg.graph.label(a.to()) == dst_label
                                    && hood_set.contains(&a.to())
                            })
                        });
                    if exists {
                        children.push((x, next));
                    }
                }
            }
        }
    }
    children
}

/// Children without template refinement: one ±1 step per variable.
pub fn plain_refinements(
    cfg: &Configuration<'_>,
    inst: &Instantiation,
) -> Vec<(usize, Instantiation)> {
    (0..cfg.domains.var_count())
        .filter_map(|x| inst.refine_step(x, cfg.domains).map(|c| (x, c)))
        .collect()
}

/// Children in the relaxation direction (`SpawnB` of BiQGen): one −1 step
/// per variable.
pub fn spawn_relaxations(inst: &Instantiation) -> Vec<(usize, Instantiation)> {
    (0..inst.var_count())
        .filter_map(|x| inst.relax_step(x).map(|p| (x, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use crate::test_support::talent_fixture;

    #[test]
    fn plain_spawn_steps_every_variable() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let root = Instantiation::root(fx.domains());
        let kids = plain_refinements(&cfg, &root);
        assert_eq!(kids.len(), fx.domains().var_count());
    }

    #[test]
    fn template_refinement_only_proposes_observed_values() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let root = Instantiation::root(fx.domains());
        let r = ev.verify(&root);
        assert!(r.feasible);
        let kids = spawn_refinements(&cfg, &root, &r, SpawnOptions::default());
        assert!(!kids.is_empty());
        // Every proposed child's match behavior must match a plain child
        // chain: spawning skips only objective-equivalent bindings, so each
        // refined child evaluates to the same match set as the densest
        // skipped predecessor would.
        for (x, child) in &kids {
            assert!(child.strictly_refines(&root));
            assert_eq!(
                child
                    .indices()
                    .iter()
                    .zip(root.indices())
                    .filter(|(a, b)| a != b)
                    .count(),
                1
            );
            let _ = x;
        }
    }

    #[test]
    fn skipped_bindings_are_objective_equivalent() {
        // Core soundness of template refinement: if Spawn jumps from index i
        // to j > i+1 for a range variable, all intermediate instances have
        // the same match set as index j.
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let root = Instantiation::root(fx.domains());
        let r = ev.verify(&root);
        let kids = spawn_refinements(&cfg, &root, &r, SpawnOptions::default());
        for (x, child) in kids {
            let target_idx = child.indices()[x];
            // Walk intermediate indices (if any were skipped).
            for mid_idx in (root.indices()[x] + 1)..target_idx {
                let mut mid = root.indices().to_vec();
                mid[x] = mid_idx;
                let mid_inst = Instantiation::new(mid);
                let mid_r = ev.verify(&mid_inst);
                let child_r = ev.verify(&child);
                assert_eq!(
                    mid_r.matches, child_r.matches,
                    "skipped binding changed the match set"
                );
            }
        }
    }

    #[test]
    fn relaxations_mirror_refinements() {
        let fx = talent_fixture();
        let bottom = Instantiation::bottom(fx.domains());
        let ups = spawn_relaxations(&bottom);
        assert_eq!(ups.len(), fx.domains().var_count());
        let root = Instantiation::root(fx.domains());
        assert!(spawn_relaxations(&root).is_empty());
    }
}
