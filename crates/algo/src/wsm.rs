//! `WSM` — weighted-sum scalarization baseline (Hwang & Masud [23],
//! discussed in the paper's related work on skyline search).
//!
//! WSM collapses the bi-objective problem into a family of single-objective
//! problems `max_q  w·δ_norm(q) + (1-w)·f_norm(q)` for a sweep of weights
//! `w ∈ [0, 1]`, returning the distinct optima. It is simple and fast but,
//! unlike the ε-Pareto archive, can only discover **supported** (convex
//! hull) Pareto points — instances in non-convex dents of the front are
//! invisible to every weight, which is exactly why the paper adopts
//! ε-dominance instead.

use crate::archive::ArchiveEntry;
use crate::config::{Configuration, GenStats};
use crate::evaluator::{EvalResult, Evaluator};
use crate::output::Generated;
use fairsqg_query::Instantiation;
use std::rc::Rc;
use std::time::Instant;

/// Options of the weighted-sum baseline.
#[derive(Debug, Clone, Copy)]
pub struct WsmOptions {
    /// Number of weights swept across `[0, 1]` (inclusive endpoints).
    pub weights: usize,
}

impl Default for WsmOptions {
    fn default() -> Self {
        Self { weights: 11 }
    }
}

/// Runs the weighted-sum baseline on a configuration.
pub fn wsm(cfg: Configuration<'_>, opts: WsmOptions) -> Generated {
    let start = Instant::now();
    let mut ev = Evaluator::new(cfg);
    let (universe, truncated) = crate::enumerate::evaluate_universe_cancellable(&mut ev);
    let feasible: Vec<(Instantiation, Rc<EvalResult>)> =
        universe.into_iter().filter(|(_, r)| r.feasible).collect();

    let mut selected: Vec<(Instantiation, Rc<EvalResult>)> = Vec::new();
    if !feasible.is_empty() {
        let delta_max = feasible
            .iter()
            .map(|(_, r)| r.objectives.delta)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let f_max = feasible
            .iter()
            .map(|(_, r)| r.objectives.fcov)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let n_weights = opts.weights.max(2);
        for k in 0..n_weights {
            let w = k as f64 / (n_weights - 1) as f64;
            let best = feasible
                .iter()
                .max_by(|a, b| {
                    let score = |r: &EvalResult| {
                        w * r.objectives.delta / delta_max + (1.0 - w) * r.objectives.fcov / f_max
                    };
                    score(&a.1).partial_cmp(&score(&b.1)).unwrap()
                })
                .expect("nonempty feasible set");
            if !selected.iter().any(|(i, _)| *i == best.0) {
                selected.push(best.clone());
            }
        }
    }

    // Weighted-sum optima are always Pareto-optimal; dedupe is enough.
    let entries = selected
        .into_iter()
        .map(|(inst, r)| ArchiveEntry {
            bx: r.objectives.boxed(cfg.eps),
            inst,
            result: r,
        })
        .collect();

    let mut stats = GenStats {
        spawned: feasible.len() as u64,
        verified: ev.verified_count(),
        cache_hits: ev.cache_hit_count(),
        elapsed: start.elapsed(),
        budget_tripped: ev.budget_tripped(),
        threads_used: 1,
        ..GenStats::default()
    };
    ev.apply_hot_path_stats(&mut stats);
    Generated {
        entries,
        eps: cfg.eps,
        stats,
        anytime: Vec::new(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::kungs;
    use crate::test_support::talent_fixture;

    #[test]
    fn wsm_optima_lie_on_the_exact_front() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let w = wsm(cfg, WsmOptions::default());
        let k = kungs(cfg);
        assert!(!w.entries.is_empty());
        let front = k.objectives();
        for e in &w.entries {
            assert!(
                front.iter().all(|o| !o.dominates(&e.objectives())),
                "WSM selected a dominated instance"
            );
        }
        // WSM only finds supported points: never more than the exact front.
        assert!(w.entries.len() <= k.entries.len());
    }

    #[test]
    fn extreme_weights_recover_anchor_points() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let w = wsm(cfg, WsmOptions { weights: 2 });
        let k = kungs(cfg);
        let max = |g: &Generated, f: fn(fairsqg_measures::Objectives) -> f64| {
            g.entries
                .iter()
                .map(|e| f(e.objectives()))
                .fold(0.0, f64::max)
        };
        assert!((max(&w, |o| o.delta) - max(&k, |o| o.delta)).abs() < 1e-9);
        assert!((max(&w, |o| o.fcov) - max(&k, |o| o.fcov)).abs() < 1e-9);
    }

    #[test]
    fn weight_count_bounds_output() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let w = wsm(cfg, WsmOptions { weights: 5 });
        assert!(w.entries.len() <= 5);
    }
}
