//! Instance streams for online generation and workload benchmarking
//! (Section V simulates streams "by randomly instantiating fixed query
//! templates").

use fairsqg_query::{Instantiation, RefinementDomains};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// A without-replacement stream: a seeded shuffle of the full instance
/// space. Suitable when `|I(Q)|` is moderate (the paper's workloads are
/// 800–1400 instances).
#[derive(Debug, Clone)]
pub struct ShuffledStream {
    order: Vec<Instantiation>,
    pos: usize,
}

impl ShuffledStream {
    /// Creates a shuffled stream over all instances of `domains`.
    pub fn new(domains: &RefinementDomains, seed: u64) -> Self {
        let lat = fairsqg_query::InstanceLattice::new(domains);
        let mut order = lat.enumerate();
        let mut rng = Pcg64Mcg::new((seed as u128) << 1 | 1);
        order.shuffle(&mut rng);
        Self { order, pos: 0 }
    }

    /// Remaining stream length.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.pos
    }
}

impl Iterator for ShuffledStream {
    type Item = Instantiation;

    fn next(&mut self) -> Option<Instantiation> {
        let item = self.order.get(self.pos).cloned();
        self.pos += 1;
        item
    }
}

/// A with-replacement stream: uniformly random instantiations, unbounded.
/// Use `.take(n)` to bound it.
#[derive(Debug, Clone)]
pub struct RandomStream {
    sizes: Vec<u16>,
    rng: Pcg64Mcg,
}

impl RandomStream {
    /// Creates an unbounded random stream over `domains`.
    pub fn new(domains: &RefinementDomains, seed: u64) -> Self {
        Self {
            sizes: domains.domains().iter().map(|d| d.len() as u16).collect(),
            rng: Pcg64Mcg::new((seed as u128) << 1 | 1),
        }
    }
}

impl Iterator for RandomStream {
    type Item = Instantiation;

    fn next(&mut self) -> Option<Instantiation> {
        let idx = self
            .sizes
            .iter()
            .map(|&s| self.rng.gen_range(0..s))
            .collect();
        Some(Instantiation::new(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::talent_fixture;

    #[test]
    fn shuffled_stream_covers_space_exactly_once() {
        let fx = talent_fixture();
        let stream = ShuffledStream::new(fx.domains(), 3);
        let items: Vec<_> = stream.collect();
        assert_eq!(items.len() as u64, fx.domains().instance_space_size());
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), items.len());
    }

    #[test]
    fn shuffled_stream_is_deterministic() {
        let fx = talent_fixture();
        let a: Vec<_> = ShuffledStream::new(fx.domains(), 11).collect();
        let b: Vec<_> = ShuffledStream::new(fx.domains(), 11).collect();
        let c: Vec<_> = ShuffledStream::new(fx.domains(), 12).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_stream_produces_valid_indices() {
        let fx = talent_fixture();
        let stream = RandomStream::new(fx.domains(), 5);
        for inst in stream.take(100) {
            for (x, &i) in inst.indices().iter().enumerate() {
                assert!((i as usize) < fx.domains().domain(x).len());
            }
        }
    }
}
