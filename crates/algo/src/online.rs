//! `OnlineQGen` (Fig. 8): progressive maintenance of a **fixed-size**
//! ε-Pareto set over a stream of instances.
//!
//! The algorithm keeps at most `k` instances at all times and grows ε only
//! when forced (Lemma 4: growing ε preserves every established ε-dominance
//! relation). A sliding window of recently-rejected instances (`W_Q`, size
//! `w`) is kept so that, after a replacement frees archive structure, a
//! cached instance can be re-offered without increasing the set size.

use crate::archive::{ArchiveEntry, EpsParetoArchive, UpdateOutcome};
use crate::config::{Configuration, GenStats};
use crate::evaluator::{EvalResult, Evaluator};
use crate::output::Generated;
use fairsqg_query::Instantiation;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

/// Options of the online generator.
#[derive(Debug, Clone, Copy)]
pub struct OnlineOptions {
    /// Target set size `k` (`|Q_{(ε,k)}| ≤ k` at all times).
    pub k: usize,
    /// Sliding-window capacity `w` (cached rejected instances).
    pub window: usize,
    /// Initial tolerance `ε_m > 0`.
    pub initial_eps: f64,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        Self {
            k: 10,
            window: 40,
            initial_eps: 0.01,
        }
    }
}

/// One point of the ε-trajectory: after processing instance `t`, the
/// maintained ε and set size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsTrace {
    /// Stream position (1-based count of processed instances).
    pub t: u64,
    /// Maintained tolerance.
    pub eps: f64,
    /// Maintained set size.
    pub len: usize,
}

/// Incremental state of `OnlineQGen`.
pub struct OnlineQGen<'a> {
    evaluator: Evaluator<'a>,
    archive: EpsParetoArchive,
    options: OnlineOptions,
    /// `W_Q`: (timestamp, instance, result) of cached rejected instances.
    window: VecDeque<(u64, Instantiation, Rc<EvalResult>)>,
    t: u64,
    trace: Vec<EpsTrace>,
}

impl<'a> OnlineQGen<'a> {
    /// Creates the online generator.
    pub fn new(cfg: Configuration<'a>, options: OnlineOptions) -> Self {
        assert!(options.k > 0, "k must be positive");
        assert!(
            options.initial_eps > 0.0,
            "initial epsilon must be positive"
        );
        Self {
            evaluator: Evaluator::new(cfg),
            archive: EpsParetoArchive::new(options.initial_eps),
            options,
            window: VecDeque::new(),
            t: 0,
            trace: Vec::new(),
        }
    }

    /// Current tolerance ε.
    pub fn eps(&self) -> f64 {
        self.archive.eps()
    }

    /// Current maintained set (`|set| ≤ k`).
    pub fn current(&self) -> &[ArchiveEntry] {
        self.archive.entries()
    }

    /// ε/size trajectory, one point per processed instance.
    pub fn trace(&self) -> &[EpsTrace] {
        &self.trace
    }

    /// Number of instances processed so far.
    pub fn processed(&self) -> u64 {
        self.t
    }

    /// Processes the next streamed instance.
    pub fn push(&mut self, inst: &Instantiation) {
        self.t += 1;
        // Verify q (the per-instance delay is dominated by this step).
        let result = self.evaluator.verify(inst);

        // Expire window entries older than w timestamps.
        let horizon = self.t.saturating_sub(self.options.window as u64);
        while let Some(&(ts, _, _)) = self.window.front() {
            if ts < horizon {
                self.window.pop_front();
            } else {
                break;
            }
        }

        if result.feasible {
            self.offer(inst.clone(), result);
        }
        self.trace.push(EpsTrace {
            t: self.t,
            eps: self.archive.eps(),
            len: self.archive.len(),
        });
    }

    /// Offers a feasible instance to the size-capped archive.
    fn offer(&mut self, inst: Instantiation, result: Rc<EvalResult>) {
        if self.archive.len() < self.options.k {
            let outcome = self.archive.update(&inst, &result);
            if !outcome.accepted() {
                self.cache(inst, result);
            }
            return;
        }

        // |Q| = k. Cases (1)/(2) of Update replace without growth; apply
        // directly. Case (3) would grow past k: grow ε via the nearest
        // neighbor's distance, which merges boxes and makes room.
        let outcome = self.archive.update(&inst, &result);
        match outcome {
            UpdateOutcome::ReplacedBoxes(_)
            | UpdateOutcome::ReplacedInstance
            | UpdateOutcome::KeptIncumbent
            | UpdateOutcome::Rejected => {
                if !outcome.accepted() {
                    self.cache(inst, result);
                }
                // ReplacedBoxes may have *shrunk* the set; try cached
                // instances to refill for free.
                self.refill_from_window();
            }
            UpdateOutcome::AddedNewBox => {
                // Now len = k + 1: enlarge ε to the distance between the
                // new instance and its nearest neighbor, rescale, and keep
                // growing geometrically until the size bound holds again.
                let mut eps = self
                    .nearest_neighbor_distance(&result)
                    .max(self.archive.eps());
                loop {
                    // Strictly grow to guarantee progress.
                    eps = (eps * 1.25).max(self.archive.eps() * 1.25);
                    self.archive.rescale(eps);
                    if self.archive.len() <= self.options.k {
                        break;
                    }
                }
                self.refill_from_window();
            }
        }
    }

    /// Euclidean distance in the (δ, f) plane between `q` and its nearest
    /// archived neighbor, expressed as a relative ε (the paper's line 16).
    fn nearest_neighbor_distance(&self, result: &EvalResult) -> f64 {
        let o = result.objectives;
        self.archive
            .entries()
            .iter()
            .filter(|e| e.result.objectives != o)
            .map(|e| {
                let eo = e.objectives();
                let dd = (eo.delta - o.delta).abs() / (1.0 + o.delta.max(eo.delta));
                let df = (eo.fcov - o.fcov).abs() / (1.0 + o.fcov.max(eo.fcov));
                (dd * dd + df * df).sqrt()
            })
            .fold(f64::INFINITY, f64::min)
            .min(1.0) // cap: a single step never explodes ε
    }

    /// Lines 18–20: re-offer cached instances that can now join without
    /// growing the set past `k`.
    fn refill_from_window(&mut self) {
        let mut kept: VecDeque<(u64, Instantiation, Rc<EvalResult>)> = VecDeque::new();
        while let Some((ts, inst, result)) = self.window.pop_front() {
            if self.archive.len() >= self.options.k {
                kept.push_back((ts, inst, result));
                continue;
            }
            let outcome = self.archive.update(&inst, &result);
            if !outcome.accepted() {
                kept.push_back((ts, inst, result));
            }
        }
        self.window = kept;
    }

    fn cache(&mut self, inst: Instantiation, result: Rc<EvalResult>) {
        if self.options.window == 0 {
            return;
        }
        if self.window.len() >= self.options.window {
            self.window.pop_front();
        }
        self.window.push_back((self.t, inst, result));
    }

    /// Whether a verification tripped the configuration's resource budget
    /// (the stream should stop feeding this generator).
    pub fn should_stop(&self) -> bool {
        self.evaluator.should_stop()
    }

    /// Finalizes the run into a [`Generated`] report.
    pub fn finish(self, started: Instant) -> Generated {
        let truncated = self.evaluator.budget_tripped().is_some();
        let mut stats = GenStats {
            spawned: self.t,
            verified: self.evaluator.verified_count(),
            cache_hits: self.evaluator.cache_hit_count(),
            elapsed: started.elapsed(),
            budget_tripped: self.evaluator.budget_tripped(),
            threads_used: 1,
            ..GenStats::default()
        };
        self.evaluator.apply_hot_path_stats(&mut stats);
        Generated {
            entries: self.archive.entries().to_vec(),
            eps: self.archive.eps(),
            stats,
            anytime: Vec::new(),
            truncated,
        }
    }
}

/// Convenience driver: runs `OnlineQGen` over a finite stream.
pub fn online_qgen<I>(
    cfg: Configuration<'_>,
    options: OnlineOptions,
    stream: I,
) -> (Generated, Vec<EpsTrace>)
where
    I: IntoIterator<Item = Instantiation>,
{
    let start = Instant::now();
    let mut gen = OnlineQGen::new(cfg, options);
    let mut truncated = false;
    for inst in stream {
        if cfg.cancelled() || gen.should_stop() {
            truncated = true;
            break;
        }
        gen.push(&inst);
    }
    let trace = gen.trace().to_vec();
    let mut out = gen.finish(start);
    out.truncated |= truncated;
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ShuffledStream;
    use crate::test_support::talent_fixture;

    #[test]
    fn size_never_exceeds_k() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let opts = OnlineOptions {
            k: 3,
            window: 5,
            initial_eps: 0.05,
        };
        let stream = ShuffledStream::new(fx.domains(), 42);
        let (out, trace) = online_qgen(cfg, opts, stream);
        assert!(out.entries.len() <= 3);
        assert!(trace.iter().all(|p| p.len <= 3));
        assert!(!out.entries.is_empty());
    }

    #[test]
    fn eps_is_monotone_nondecreasing() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let opts = OnlineOptions {
            k: 2,
            window: 4,
            initial_eps: 0.01,
        };
        let stream = ShuffledStream::new(fx.domains(), 7);
        let (_, trace) = online_qgen(cfg, opts, stream);
        for w in trace.windows(2) {
            assert!(w[1].eps >= w[0].eps, "epsilon must never shrink (Lemma 4)");
        }
    }

    #[test]
    fn larger_k_needs_smaller_eps() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let run = |k: usize| {
            let stream = ShuffledStream::new(fx.domains(), 99);
            let (out, _) = online_qgen(
                cfg,
                OnlineOptions {
                    k,
                    window: 10,
                    initial_eps: 0.01,
                },
                stream,
            );
            out.eps
        };
        let eps_small_k = run(2);
        let eps_large_k = run(16);
        assert!(
            eps_large_k <= eps_small_k + 1e-12,
            "larger k should not require a larger epsilon ({eps_large_k} vs {eps_small_k})"
        );
    }

    #[test]
    fn final_set_members_are_feasible() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let stream = ShuffledStream::new(fx.domains(), 1);
        let (out, _) = online_qgen(cfg, OnlineOptions::default(), stream);
        assert!(out.entries.iter().all(|e| e.result.feasible));
    }

    #[test]
    fn window_zero_disables_caching() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let stream = ShuffledStream::new(fx.domains(), 5);
        let (out, _) = online_qgen(
            cfg,
            OnlineOptions {
                k: 4,
                window: 0,
                initial_eps: 0.05,
            },
            stream,
        );
        assert!(out.entries.len() <= 4);
    }
}
