//! Parallel query generation — the paper's stated future-work extension
//! ("a future topic is to study parallel query generation over large
//! graphs").
//!
//! Verification cost `T_q` varies wildly across the instance space (a
//! relaxed instance matches far more nodes than a tight one), so static
//! chunking leaves threads idle at the tail. Workers instead *claim* small
//! batches of instances from a shared atomic cursor over the
//! lexicographically enumerated space: fast workers drain whatever slow
//! ones leave behind. Each worker verifies with its own thread-local
//! diversity measure (the graph is shared immutably) and collects results
//! in a private shard; the shards are merged by lattice index and folded
//! into the ε-Pareto archive in ascending order — the same order the
//! sequential fold uses, so the archive (including `Update`'s
//! order-dependent same-box tie-breaks) is bit-identical to `enum_qgen`'s.

use crate::archive::EpsParetoArchive;
use crate::config::{Configuration, GenStats};
use crate::evaluator::EvalResult;
use crate::output::Generated;
use fairsqg_matcher::{
    plan_matching_order, take_stats, try_match_output_set_with, BudgetExceeded, MatchOptions,
    MatchScratch, MatcherStats,
};
use fairsqg_measures::{
    coverage_score, is_feasible, DiversityMeasure, MeasureCacheStats, Objectives,
    SharedDiversityCache,
};
use fairsqg_query::{ConcreteQuery, InstanceLattice, Instantiation};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Instances a worker claims per cursor bump — enough to amortize the
/// atomic traffic, small enough that the tail stays balanced.
const CLAIM_BATCH: usize = 8;

/// Resolves a requested worker count: `0` means "one per hardware
/// thread", and any request is clamped to
/// `std::thread::available_parallelism`. Verification is CPU-bound, so
/// workers beyond the core count add nothing but preemption — measured on
/// this workload, an 8-worker pool on one core burns ~30% more CPU than
/// one worker for the same instances, purely from mid-verification cache
/// eviction.
pub fn effective_threads(requested: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if requested == 0 {
        hw
    } else {
        requested.min(hw)
    }
}

/// Verifies one instance without any cache (thread-friendly). `scratch`
/// is the worker's reusable matcher working memory.
fn verify_standalone(
    cfg: &Configuration<'_>,
    measure: &DiversityMeasure<'_>,
    inst: &Instantiation,
    scratch: &mut MatchScratch,
) -> Result<EvalResult, BudgetExceeded> {
    let query = ConcreteQuery::materialize(cfg.template, cfg.domains, inst);
    let matches = try_match_output_set_with(
        cfg.graph,
        &query,
        MatchOptions {
            restrict_output: cfg.output_restriction,
            use_index: !cfg.reference_path,
            optimize: cfg.matcher_optimized(),
            plan: cfg.match_plan.map(|p| p.as_ref()),
            stop: cfg.hard_stop_flag(),
        },
        &cfg.budget,
        scratch,
    )?;
    let counts = cfg.groups.count_in_groups(&matches);
    let delta = measure.score(&matches);
    let fcov = coverage_score(&counts, cfg.spec);
    let feasible = is_feasible(&counts, cfg.spec);
    Ok(EvalResult {
        matches,
        counts,
        objectives: Objectives::new(delta, fcov),
        feasible,
    })
}

/// What one worker brings home: its result shard keyed by lattice index,
/// the budget trip that stopped it (if any), and its hot-path counters.
type Shard = (
    Vec<(usize, EvalResult)>,
    Option<BudgetExceeded>,
    MatcherStats,
    MeasureCacheStats,
);

/// Parallel `EnumQGen`: verifies the whole instance space on a pool of
/// work-stealing workers and folds the results into an ε-Pareto archive
/// identical to the sequential one. `threads` is a *request*: `0` means
/// "all hardware threads", and any count is clamped to the hardware (see
/// [`effective_threads`]); `GenStats::threads_used` reports the actual
/// pool size.
pub fn par_enum_qgen(cfg: Configuration<'_>, threads: usize) -> Generated {
    run_par_enum(cfg, effective_threads(threads))
}

/// The pool itself, taking the worker count literally. Exposed for tests
/// that must exercise multi-shard merging on machines with fewer cores
/// than shards.
#[doc(hidden)]
pub fn par_enum_qgen_exact(cfg: Configuration<'_>, workers: usize) -> Generated {
    run_par_enum(cfg, workers.max(1))
}

fn run_par_enum(cfg: Configuration<'_>, threads: usize) -> Generated {
    let start = Instant::now();
    let lat = InstanceLattice::new(cfg.domains);
    let all = lat.enumerate();
    let total = all.len();

    // One cost-based matching plan for the whole pool (workers only read
    // it): planned here when the caller did not bring a warm-pool plan,
    // with the planning counters captured on this thread (workers reset
    // their own thread-locals).
    let plan_baseline = fairsqg_matcher::matcher_stats();
    let local_plan = if cfg.matcher_optimized() && cfg.match_plan.is_none() {
        let root = ConcreteQuery::materialize(
            cfg.template,
            cfg.domains,
            &Instantiation::root(cfg.domains),
        );
        Some(Arc::new(plan_matching_order(cfg.graph, &root)))
    } else {
        None
    };
    let plan_delta = fairsqg_matcher::matcher_stats().delta_since(plan_baseline);
    let cfg = match &local_plan {
        Some(p) => cfg.with_match_plan(p),
        None => cfg,
    };

    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    // One lock-free memoization table for the whole pool: workers publish
    // computed distances/relevances to each other instead of each paying
    // the full cold-cache cost (which would otherwise make oversubscribed
    // runs redo the same work per worker). A caller-provided table (the
    // service's per-(graph, epoch) warm state) takes precedence, so the
    // pool both benefits from and feeds the cross-request cache.
    let shared_cache = if cfg.reference_path || !cfg.diversity.cache_distances {
        None
    } else if let Some(shared) = cfg.shared_diversity {
        Some(Arc::clone(shared))
    } else {
        Some(Arc::new(SharedDiversityCache::for_config(
            cfg.graph,
            cfg.template.output_label(),
            &cfg.diversity,
        )))
    };

    let shards: Vec<Shard> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let (cfg_ref, all_ref, cursor_ref, stop_ref) = (&cfg, &all, &cursor, &stop);
            let worker_cache = shared_cache.clone();
            handles.push(scope.spawn(move || {
                // Matcher counters are thread-local; reset them so the
                // final snapshot is exactly this worker's contribution
                // even if the closure ever runs on a reused thread.
                let _ = take_stats();
                let mut diversity = cfg_ref.diversity;
                if cfg_ref.reference_path {
                    diversity.cache_distances = false;
                }
                let mut measure = DiversityMeasure::new(
                    cfg_ref.graph,
                    cfg_ref.template.output_label(),
                    diversity,
                );
                if let Some(cache) = worker_cache {
                    measure.attach_shared_cache(cache);
                }
                let mut out = Vec::new();
                let mut tripped = None;
                let mut scratch = MatchScratch::default();
                'claim: while !stop_ref.load(Ordering::Relaxed) {
                    let base = cursor_ref.fetch_add(CLAIM_BATCH, Ordering::Relaxed);
                    if base >= total {
                        break;
                    }
                    let end = (base + CLAIM_BATCH).min(total);
                    for (i, inst) in (base..end).zip(&all_ref[base..end]) {
                        // Every worker observes the shared token; a fired
                        // token stops the whole pool within one T_q.
                        if cfg_ref.cancelled() || stop_ref.load(Ordering::Relaxed) {
                            break 'claim;
                        }
                        match verify_standalone(cfg_ref, &measure, inst, &mut scratch) {
                            Ok(result) => out.push((i, result)),
                            Err(e) => {
                                // A tripped budget stops the pool; the
                                // partial match set is discarded, never
                                // reported.
                                tripped = Some(e);
                                stop_ref.store(true, Ordering::Relaxed);
                                break 'claim;
                            }
                        }
                    }
                }
                (out, tripped, take_stats(), measure.cache_stats())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });

    let mut budget_tripped = None;
    let mut matcher = plan_delta;
    let mut measure_total = MeasureCacheStats::default();
    let mut results: Vec<(usize, EvalResult)> = Vec::with_capacity(total);
    for (shard, tripped, worker_matcher, worker_measure) in shards {
        budget_tripped = budget_tripped.or(tripped);
        matcher.merge(worker_matcher);
        measure_total.distance_hits += worker_measure.distance_hits;
        measure_total.distance_misses += worker_measure.distance_misses;
        results.extend(shard);
    }

    // Refold in lattice order: `Update` keeps the first representative of
    // a box it sees, so only the sequential enumeration order reproduces
    // `enum_qgen`'s archive bit-for-bit.
    results.sort_unstable_by_key(|&(i, _)| i);
    let verified = results.len() as u64;
    let truncated = verified < total as u64 || budget_tripped.is_some();
    let mut archive = EpsParetoArchive::new(cfg.eps);
    for (i, result) in results {
        if result.feasible {
            let rc = Rc::new(result);
            cfg.offer(&mut archive, &all[i], &rc);
        }
    }

    let mut stats = GenStats {
        spawned: verified,
        verified,
        elapsed: start.elapsed(),
        budget_tripped,
        threads_used: threads as u64,
        ..GenStats::default()
    };
    stats.record_hot_path(matcher, measure_total);
    Generated {
        entries: archive.entries().to_vec(),
        eps: cfg.eps,
        stats,
        anytime: Vec::new(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enum_qgen;
    use crate::test_support::talent_fixture;

    #[test]
    fn parallel_matches_sequential_enum() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let seq = enum_qgen(cfg, false);
        // Exact worker count: 4 shards must merge correctly even on
        // machines with fewer than 4 cores.
        let par = par_enum_qgen_exact(cfg, 4);
        // The index-ordered refold makes the archive *identical*, entry
        // for entry — same instances, same order, bit-equal objectives.
        assert_eq!(seq.entries.len(), par.entries.len());
        for (a, b) in seq.entries.iter().zip(par.entries.iter()) {
            assert_eq!(a.inst, b.inst);
            assert_eq!(
                a.objectives().delta.to_bits(),
                b.objectives().delta.to_bits()
            );
            assert_eq!(a.objectives().fcov.to_bits(), b.objectives().fcov.to_bits());
            assert_eq!(a.result.matches, b.result.matches);
        }
        assert_eq!(par.stats.threads_used, 4);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = par_enum_qgen(cfg, 0);
        assert_eq!(out.stats.threads_used, effective_threads(0) as u64);
        assert!(out.stats.threads_used >= 1);
        assert!(!out.entries.is_empty());
    }

    #[test]
    fn oversubscribed_requests_are_clamped_to_hardware() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let hw = effective_threads(0);
        let out = par_enum_qgen(cfg, 1024);
        assert_eq!(out.stats.threads_used, hw as u64);
        assert_eq!(effective_threads(1024), hw);
        assert_eq!(effective_threads(1), 1);
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = par_enum_qgen(cfg, 1);
        assert!(!out.entries.is_empty());
    }

    #[test]
    fn reference_path_gives_identical_entries() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let fast = par_enum_qgen_exact(cfg, 2);
        let slow = par_enum_qgen_exact(cfg.with_reference_path(), 2);
        assert_eq!(fast.entries.len(), slow.entries.len());
        for (a, b) in fast.entries.iter().zip(slow.entries.iter()) {
            assert_eq!(a.inst, b.inst);
            assert_eq!(
                a.objectives().delta.to_bits(),
                b.objectives().delta.to_bits()
            );
            assert_eq!(a.objectives().fcov.to_bits(), b.objectives().fcov.to_bits());
        }
        // The reference path must not touch the index or distance cache.
        assert_eq!(slow.stats.index_candidates, 0);
        assert_eq!(slow.stats.distance_cache_hits, 0);
        assert_eq!(slow.stats.distance_cache_misses, 0);
        assert!(fast.stats.index_candidates > 0 || fast.stats.scan_fallbacks > 0);
    }

    /// The archive fingerprint — instances, bit-level objectives, and
    /// match sets — is invariant across worker counts, with the matching
    /// optimizer both on and off. Regression guard for the cost-based
    /// ordering: a plan shared across workers (or an adaptive re-plan
    /// firing on one shard but not another) must never leak into results.
    #[test]
    fn archive_fingerprint_invariant_across_thread_counts() {
        let fx = talent_fixture();
        for optimize in [true, false] {
            let cfg = fx.configuration(0.3).with_match_optimizer(optimize);
            let fingerprint = |out: &Generated| -> Vec<_> {
                out.entries
                    .iter()
                    .map(|e| {
                        (
                            e.inst.clone(),
                            e.objectives().delta.to_bits(),
                            e.objectives().fcov.to_bits(),
                            e.result.matches.clone(),
                        )
                    })
                    .collect()
            };
            let one = par_enum_qgen_exact(cfg, 1);
            let base = fingerprint(&one);
            assert!(!base.is_empty());
            for workers in [2, 4] {
                let out = par_enum_qgen_exact(cfg, workers);
                assert_eq!(
                    base,
                    fingerprint(&out),
                    "archive diverged at {workers} workers (optimize={optimize})"
                );
            }
        }
    }
}
