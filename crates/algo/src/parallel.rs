//! Parallel query generation — the paper's stated future-work extension
//! ("a future topic is to study parallel query generation over large
//! graphs").
//!
//! The enumeration phase is embarrassingly parallel: the instance space is
//! split into contiguous chunks, each verified on its own thread with a
//! thread-local diversity measure (the graph is shared immutably). The
//! ε-Pareto archive is then built sequentially from the verified results —
//! `Update` is cheap relative to verification (`T_q`).

use crate::archive::EpsParetoArchive;
use crate::config::{Configuration, GenStats};
use crate::evaluator::EvalResult;
use crate::output::Generated;
use fairsqg_matcher::{try_match_output_set, BudgetExceeded, MatchOptions};
use fairsqg_measures::{coverage_score, is_feasible, DiversityMeasure, Objectives};
use fairsqg_query::{ConcreteQuery, InstanceLattice, Instantiation};
use std::rc::Rc;
use std::time::Instant;

/// Verifies one instance without any cache (thread-friendly).
fn verify_standalone(
    cfg: &Configuration<'_>,
    measure: &DiversityMeasure<'_>,
    inst: &Instantiation,
) -> Result<EvalResult, BudgetExceeded> {
    let query = ConcreteQuery::materialize(cfg.template, cfg.domains, inst);
    let matches = try_match_output_set(cfg.graph, &query, MatchOptions::default(), &cfg.budget)?;
    let counts = cfg.groups.count_in_groups(&matches);
    let delta = measure.score(&matches);
    let fcov = coverage_score(&counts, cfg.spec);
    let feasible = is_feasible(&counts, cfg.spec);
    Ok(EvalResult {
        matches,
        counts,
        objectives: Objectives::new(delta, fcov),
        feasible,
    })
}

/// Parallel `EnumQGen`: verifies the whole instance space on `threads`
/// worker threads and folds the results into an ε-Pareto archive.
pub fn par_enum_qgen(cfg: Configuration<'_>, threads: usize) -> Generated {
    let start = Instant::now();
    let threads = threads.max(1);
    let lat = InstanceLattice::new(cfg.domains);
    let all = lat.enumerate();
    let chunk = all.len().div_ceil(threads);

    type ChunkOut = (Vec<(Instantiation, EvalResult)>, Option<BudgetExceeded>);
    let chunk_outs: Vec<ChunkOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in all.chunks(chunk.max(1)) {
            let cfg_ref = &cfg;
            handles.push(scope.spawn(move || {
                let measure = DiversityMeasure::new(
                    cfg_ref.graph,
                    cfg_ref.template.output_label(),
                    cfg_ref.diversity,
                );
                let mut out = Vec::with_capacity(part.len());
                let mut tripped = None;
                for inst in part {
                    // Each worker observes the shared token independently;
                    // a fired token stops all chunks within one T_q.
                    if cfg_ref.cancelled() {
                        break;
                    }
                    match verify_standalone(cfg_ref, &measure, inst) {
                        Ok(result) => out.push((inst.clone(), result)),
                        Err(e) => {
                            // A tripped budget stops this chunk; the partial
                            // match set is discarded, never reported.
                            tripped = Some(e);
                            break;
                        }
                    }
                }
                (out, tripped)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });

    let budget_tripped = chunk_outs.iter().find_map(|(_, t)| *t);
    let results: Vec<(Instantiation, EvalResult)> =
        chunk_outs.into_iter().flat_map(|(out, _)| out).collect();

    let total = all.len() as u64;
    let verified = results.len() as u64;
    let truncated = verified < total;
    let mut archive = EpsParetoArchive::new(cfg.eps);
    for (inst, result) in results {
        if result.feasible {
            let rc = Rc::new(result);
            archive.update(&inst, &rc);
        }
    }

    Generated {
        entries: archive.entries().to_vec(),
        eps: cfg.eps,
        stats: GenStats {
            spawned: verified,
            verified,
            elapsed: start.elapsed(),
            budget_tripped,
            ..GenStats::default()
        },
        anytime: Vec::new(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enum_qgen;
    use crate::test_support::talent_fixture;

    #[test]
    fn parallel_matches_sequential_enum() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let seq = enum_qgen(cfg, false);
        let par = par_enum_qgen(cfg, 4);
        let key = |g: &Generated| {
            let mut v: Vec<(u64, u64)> = g
                .entries
                .iter()
                .map(|e| {
                    (
                        e.objectives().delta.to_bits(),
                        e.objectives().fcov.to_bits(),
                    )
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = par_enum_qgen(cfg, 1);
        assert!(!out.entries.is_empty());
    }
}
