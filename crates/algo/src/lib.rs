//! # fairsqg-algo
//!
//! The FairSQG query-generation algorithms (Section IV of "Subgraph Query
//! Generation with Fairness and Diversity Constraints", ICDE 2022):
//!
//! * [`enum_qgen`] — the naive enumeration baseline (`EnumQGen`),
//! * [`kungs`] — exact Pareto sets via Kung's algorithm (`Kungs`),
//! * [`cbm`] — the ε-constraint bi-objective baseline (`CBM`, \[10\]),
//! * [`wsm`] — the weighted-sum scalarization baseline (\[23\]),
//! * [`rfqgen`] — depth-first "refine as always" generation with template
//!   refinement and infeasibility pruning (`RfQGen`),
//! * [`biqgen`] — bi-directional generation with "sandwich" pruning
//!   (`BiQGen`),
//! * [`OnlineQGen`] — fixed-size ε-Pareto maintenance over instance streams
//!   (`OnlineQGen`),
//! * [`par_enum_qgen`] — parallel verification (the paper's future-work
//!   extension).
//!
//! All algorithms share the [`Evaluator`] (verification with memoization
//! and `incVerify`) and the [`EpsParetoArchive`] implementing procedure
//! `Update` (Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod biqgen;
mod cancel;
mod cbm;
mod config;
mod enumerate;
mod evaluator;
mod online;
mod output;
mod parallel;
mod rfqgen;
mod spawn;
mod stream;
mod wsm;

#[cfg(test)]
pub(crate) mod test_support;

pub use archive::{ArchiveDelta, ArchiveEntry, ArchiveObserver, EpsParetoArchive, UpdateOutcome};
pub use biqgen::{biqgen, BiQGenOptions};
pub use cancel::CancelToken;
pub use cbm::{cbm, CbmOptions};
pub use config::{Configuration, GenStats};
pub use enumerate::{enum_qgen, evaluate_universe, kungs};
pub use evaluator::{EvalResult, Evaluator};
pub use fairsqg_matcher::{BudgetExceeded, BudgetKind, MatchBudget};
pub use online::{online_qgen, EpsTrace, OnlineOptions, OnlineQGen};
pub use output::{AnytimePoint, Generated};
pub use parallel::{effective_threads, par_enum_qgen, par_enum_qgen_exact};
pub use rfqgen::{rfqgen, RfQGenOptions};
pub use spawn::{plain_refinements, spawn_refinements, spawn_relaxations, SpawnOptions};
pub use stream::{RandomStream, ShuffledStream};
pub use wsm::{wsm, WsmOptions};
