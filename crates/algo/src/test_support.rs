//! Shared test fixture: a miniature talent-search graph (Example 1 of the
//! paper) with gender groups, a 3-variable template, and helpers to build
//! configurations. Only compiled for tests.

use crate::config::Configuration;
use fairsqg_graph::{AttrValue, CmpOp, CoverageSpec, Graph, GraphBuilder, GroupSet};
use fairsqg_measures::{DiversityConfig, Relevance};
use fairsqg_query::{DomainConfig, QueryTemplate, RefinementDomains, TemplateBuilder};

/// Owns every piece of a small, fully deterministic configuration.
pub struct Fixture {
    graph: Graph,
    template: QueryTemplate,
    domains: RefinementDomains,
    groups: GroupSet,
    spec: CoverageSpec,
}

impl Fixture {
    /// Borrowed domains.
    pub fn domains(&self) -> &RefinementDomains {
        &self.domains
    }

    /// Borrowed graph.
    #[allow(dead_code)]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A configuration over the fixture with the given ε.
    pub fn configuration(&self, eps: f64) -> Configuration<'_> {
        Configuration::new(
            &self.graph,
            &self.template,
            &self.domains,
            &self.groups,
            &self.spec,
            eps,
            DiversityConfig {
                lambda: 0.5,
                relevance: Relevance::InDegreeNormalized,
                pair_cap: 0,
                seed: 7,
                ..DiversityConfig::default()
            },
        )
    }
}

/// Builds the talent-search fixture:
///
/// * 12 directors (6 per gender group) with varying `major`,
/// * 6 recommenders with `yearsOfExp ∈ {5, 10, 15}`,
/// * 3 orgs with `employees ∈ {100, 500, 1000}`,
/// * template: `director u0 <-recommend- user u1 -worksAt-> org u2`, plus an
///   optional second recommender `u3 -recommend-> u0`;
///   range vars `u1.yearsOfExp >= x1`, `u2.employees >= x2`.
/// * coverage: 2 per gender group.
pub fn talent_fixture() -> Fixture {
    let mut b = GraphBuilder::new();
    let mut directors = Vec::new();
    for i in 0..12 {
        let gender = (i % 2) as i64;
        let major = (i % 5) as i64;
        directors.push(b.add_named_node(
            "director",
            &[
                ("gender", AttrValue::Int(gender)),
                ("major", AttrValue::Int(major)),
            ],
        ));
    }
    let mut users = Vec::new();
    for i in 0..6 {
        let exp = 5 + 5 * (i % 3) as i64;
        users.push(b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(exp))]));
    }
    let mut orgs = Vec::new();
    for &e in &[100i64, 500, 1000] {
        orgs.push(b.add_named_node("org", &[("employees", AttrValue::Int(e))]));
    }
    // Each user recommends 4 directors; works at one org.
    for (i, &u) in users.iter().enumerate() {
        for j in 0..4 {
            b.add_named_edge(u, directors[(i * 2 + j * 3) % 12], "recommend");
        }
        b.add_named_edge(u, orgs[i % 3], "worksAt");
    }
    let graph = b.finish();
    let s = graph.schema();

    let mut tb = TemplateBuilder::new();
    let u0 = tb.node(s.find_node_label("director").unwrap());
    let u1 = tb.node(s.find_node_label("user").unwrap());
    let u2 = tb.node(s.find_node_label("org").unwrap());
    let u3 = tb.node(s.find_node_label("user").unwrap());
    let recommend = s.find_edge_label("recommend").unwrap();
    let works = s.find_edge_label("worksAt").unwrap();
    tb.edge(u1, u0, recommend);
    tb.edge(u1, u2, works);
    tb.optional_edge(u3, u0, recommend);
    tb.range_literal(u1, s.find_attr("yearsOfExp").unwrap(), CmpOp::Ge);
    tb.range_literal(u2, s.find_attr("employees").unwrap(), CmpOp::Ge);
    let template = tb.finish(u0).unwrap();
    let domains = RefinementDomains::build(&template, &graph, DomainConfig::default());

    let gender = s.find_attr("gender").unwrap();
    let groups = GroupSet::by_attribute(&graph, gender, &[AttrValue::Int(0), AttrValue::Int(1)]);
    let spec = CoverageSpec::equal_opportunity(2, 2);

    Fixture {
        graph,
        template,
        domains,
        groups,
        spec,
    }
}
