//! `BiQGen` (Fig. 6): bi-directional query generation with "sandwich"
//! pruning (Lemma 3).
//!
//! A forward exploration refines from the lattice root `q_r` (high
//! diversity first) while a backward exploration relaxes from the bottom
//! `q_b` (converging early to instances with high coverage). When a
//! feasible forward/backward pair `(q, q')` with `q' ⪰_I q` shares a box
//! coordinate (`Box(q).δ = Box(q').δ` or `Box(q).f = Box(q').f`), every
//! instance strictly between them in refinement order is provably outside
//! the ε-Pareto set (Lemma 3) and its **verification is skipped**.
//!
//! Implementation note: the paper skips sandwiched instances "without
//! further exploration". We skip their verification (the dominant cost,
//! `T_q`) but still expand their lattice children, so that regions beyond a
//! sandwich stay reachable regardless of queue interleaving; the children
//! themselves are sandwich-checked recursively.

use crate::archive::EpsParetoArchive;
use crate::config::{Configuration, GenStats};
use crate::evaluator::Evaluator;
use crate::output::{AnytimePoint, Generated};
use crate::spawn::{plain_refinements, spawn_refinements, spawn_relaxations, SpawnOptions};
use fairsqg_measures::BoxCoord;
use fairsqg_query::Instantiation;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Options of the bi-directional generator.
#[derive(Debug, Clone, Copy)]
pub struct BiQGenOptions {
    /// Spawner behavior for the forward direction.
    pub spawn: SpawnOptions,
    /// Record the anytime-quality trace.
    pub collect_anytime: bool,
    /// Enable sandwich pruning (disable to measure its benefit).
    pub sandwich_pruning: bool,
    /// How many relaxation steps past the feasibility boundary the
    /// backward exploration keeps fanning out. Among feasible instances,
    /// coverage `f` only *decreases* with further relaxation (Lemma 2), so
    /// the high-coverage instances the backward search exists to find all
    /// sit within a thin band above the boundary; beyond it the forward
    /// exploration (which is complete on its own) takes over. `usize::MAX`
    /// restores the paper's unbounded backward sweep.
    pub backward_slack: usize,
}

impl Default for BiQGenOptions {
    fn default() -> Self {
        Self {
            spawn: SpawnOptions::default(),
            collect_anytime: false,
            sandwich_pruning: true,
            backward_slack: 2,
        }
    }
}

/// A sandwich bound pair `(lo, hi)`: `hi ⪰_I lo`, both feasible and
/// verified, sharing a box coordinate.
#[derive(Debug, Clone)]
struct SandwichPair {
    lo: Instantiation,
    hi: Instantiation,
}

/// The `SBounds` set with subsumption-aware insertion.
#[derive(Debug, Default)]
struct SBounds {
    pairs: Vec<SandwichPair>,
}

impl SBounds {
    /// `SPrune`: is `q` strictly inside some sandwich?
    fn prunes(&self, q: &Instantiation) -> bool {
        self.pairs
            .iter()
            .any(|p| q.strictly_refines(&p.lo) && p.hi.strictly_refines(q))
    }

    /// Inserts a new pair, widening or discarding per the paper's update
    /// rule: a pair subsumed by an existing one is dropped; existing pairs
    /// subsumed by the new one are replaced.
    fn insert(&mut self, lo: Instantiation, hi: Instantiation) {
        // Subsumed by an existing pair?
        if self
            .pairs
            .iter()
            .any(|p| lo.refines(&p.lo) && p.hi.refines(&hi))
        {
            return;
        }
        // Remove pairs the new one subsumes.
        self.pairs
            .retain(|p| !(p.lo.refines(&lo) && hi.refines(&p.hi)));
        self.pairs.push(SandwichPair { lo, hi });
    }
}

/// Runs `BiQGen` on a configuration.
pub fn biqgen(cfg: Configuration<'_>, opts: BiQGenOptions) -> Generated {
    let start = Instant::now();
    let mut ev = Evaluator::new(cfg);
    let mut archive = EpsParetoArchive::new(cfg.eps);
    let mut anytime = Vec::new();
    let mut stats = GenStats::default();

    let mut s_f: VecDeque<Instantiation> = VecDeque::from([Instantiation::root(cfg.domains)]);
    // Backward queue items carry the number of relaxation steps taken
    // since the feasibility boundary was crossed (0 while infeasible).
    let mut s_b: VecDeque<(Instantiation, usize)> =
        VecDeque::from([(Instantiation::bottom(cfg.domains), 0)]);
    stats.spawned = 2;
    let mut seen_f: HashSet<Instantiation> = HashSet::new();
    let mut seen_b: HashSet<Instantiation> = HashSet::new();
    let mut sbounds = SBounds::default();

    // Verified feasible instances per direction, with boxes, for pair
    // detection (Lemma 3 requires one from each frontier).
    let mut fwd_feasible: Vec<(Instantiation, BoxCoord)> = Vec::new();
    let mut bwd_feasible: Vec<(Instantiation, BoxCoord)> = Vec::new();

    let record =
        |archive: &EpsParetoArchive, ev: &Evaluator<'_>, anytime: &mut Vec<AnytimePoint>| {
            anytime.push(AnytimePoint {
                verified: ev.verified_count(),
                delta_star: archive
                    .entries()
                    .iter()
                    .map(|e| e.objectives().delta)
                    .fold(0.0, f64::max),
                f_star: archive
                    .entries()
                    .iter()
                    .map(|e| e.objectives().fcov)
                    .fold(0.0, f64::max),
            });
        };

    let mut truncated = false;
    while !s_f.is_empty() || !s_b.is_empty() {
        if ev.should_stop() {
            truncated = true;
            break;
        }
        // -------- forward exploration (refinement from q_r) --------
        if let Some(q) = s_f.pop_front() {
            if seen_f.insert(q.clone()) {
                let pruned = opts.sandwich_pruning && sbounds.prunes(&q);
                if pruned {
                    stats.pruned_sandwich += 1;
                    // Keep exploring (cheap index steps), skip verification.
                    for (_, child) in plain_refinements(&cfg, &q) {
                        if !seen_f.contains(&child) {
                            stats.spawned += 1;
                            s_f.push_back(child);
                        }
                    }
                } else if ev.quick_infeasible(&q) {
                    // Certainly infeasible from the candidate set alone:
                    // the refinement subtree is dead (Lemma 2).
                    stats.pruned_infeasible += 1;
                } else {
                    let r = ev.verify_with_best_parent(&q);
                    if !r.feasible {
                        stats.pruned_infeasible += 1;
                    } else {
                        cfg.offer(&mut archive, &q, &r);
                        if opts.collect_anytime {
                            record(&archive, &ev, &mut anytime);
                        }
                        let bx = r.objectives.boxed(cfg.eps);
                        // Pair detection against backward-verified instances.
                        if opts.sandwich_pruning {
                            for (hi, hbx) in &bwd_feasible {
                                if hi.strictly_refines(&q)
                                    && (hbx.delta == bx.delta || hbx.fcov == bx.fcov)
                                {
                                    sbounds.insert(q.clone(), hi.clone());
                                }
                            }
                            fwd_feasible.push((q.clone(), bx));
                        }
                        for (_, child) in spawn_refinements(&cfg, &q, &r, opts.spawn) {
                            if !seen_f.contains(&child) {
                                stats.spawned += 1;
                                s_f.push_back(child);
                            }
                        }
                    }
                }
            }
        }

        // -------- backward exploration (relaxation from q_b) --------
        if let Some((q, slack)) = s_b.pop_front() {
            if seen_b.insert(q.clone()) {
                let pruned = opts.sandwich_pruning && sbounds.prunes(&q);
                if pruned {
                    stats.pruned_sandwich += 1;
                    if slack < opts.backward_slack {
                        for (_, parent) in spawn_relaxations(&q) {
                            if !seen_b.contains(&parent) {
                                stats.spawned += 1;
                                s_b.push_back((parent, slack + 1));
                            }
                        }
                    }
                } else if ev.quick_infeasible(&q) {
                    // Certainly infeasible: skip the matching cost and
                    // relax *greedily* toward feasibility instead of
                    // fanning out — the infeasible bottom region is
                    // exponentially large, and completeness is already
                    // guaranteed by the forward exploration. Relaxing the
                    // most-refined variable walks the shortest path to the
                    // feasibility boundary, where the backward search
                    // resumes exhaustive relaxation (that is where the
                    // high-coverage instances live).
                    stats.pruned_infeasible += 1;
                    let most_refined = (0..q.var_count())
                        .filter(|&x| q.indices()[x] > 0)
                        .max_by_key(|&x| q.indices()[x]);
                    if let Some(x) = most_refined {
                        if let Some(parent) = q.relax_step(x) {
                            if !seen_b.contains(&parent) {
                                stats.spawned += 1;
                                s_b.push_back((parent, 0));
                            }
                        }
                    }
                } else {
                    let r = ev.verify_with_best_parent(&q);
                    if r.feasible {
                        cfg.offer(&mut archive, &q, &r);
                        if opts.collect_anytime {
                            record(&archive, &ev, &mut anytime);
                        }
                        if opts.sandwich_pruning {
                            let bx = r.objectives.boxed(cfg.eps);
                            for (lo, lbx) in &fwd_feasible {
                                if q.strictly_refines(lo)
                                    && (lbx.delta == bx.delta || lbx.fcov == bx.fcov)
                                {
                                    sbounds.insert(lo.clone(), q.clone());
                                }
                            }
                            bwd_feasible.push((q.clone(), bx));
                        }
                    }
                    if r.feasible {
                        // Fan out only within the slack band above the
                        // feasibility boundary — f can only drop from here
                        // on (Lemma 2), and the forward exploration covers
                        // the relaxed remainder on its own.
                        if slack < opts.backward_slack {
                            for (_, parent) in spawn_relaxations(&q) {
                                if !seen_b.contains(&parent) {
                                    stats.spawned += 1;
                                    s_b.push_back((parent, slack + 1));
                                }
                            }
                        }
                    } else {
                        // Verified infeasible (the quick check was
                        // inconclusive): still below the boundary — keep
                        // descending greedily along a single path rather
                        // than fanning out through the infeasible region.
                        let most_refined = (0..q.var_count())
                            .filter(|&x| q.indices()[x] > 0)
                            .max_by_key(|&x| q.indices()[x]);
                        if let Some(x) = most_refined {
                            if let Some(parent) = q.relax_step(x) {
                                if !seen_b.contains(&parent) {
                                    stats.spawned += 1;
                                    s_b.push_back((parent, 0));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    stats.verified = ev.verified_count();
    stats.cache_hits = ev.cache_hit_count();
    stats.elapsed = start.elapsed();
    stats.budget_tripped = ev.budget_tripped();
    stats.threads_used = 1;
    ev.apply_hot_path_stats(&mut stats);
    truncated |= stats.budget_tripped.is_some();
    Generated {
        entries: archive.entries().to_vec(),
        eps: cfg.eps,
        stats,
        anytime,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enum_qgen, evaluate_universe};
    use crate::test_support::talent_fixture;
    use fairsqg_measures::Objectives;

    #[test]
    fn biqgen_produces_valid_eps_pareto_set() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = biqgen(cfg, BiQGenOptions::default());
        assert!(!out.entries.is_empty());
        let mut ev = Evaluator::new(cfg);
        let feasible: Vec<Objectives> = evaluate_universe(&mut ev)
            .into_iter()
            .filter(|(_, r)| r.feasible)
            .map(|(_, r)| r.objectives)
            .collect();
        let mut a = EpsParetoArchive::new(cfg.eps);
        for e in &out.entries {
            a.update(&e.inst, &e.result);
        }
        assert!(a.covers_shifted(&feasible));
    }

    #[test]
    fn sandwich_pruning_preserves_quality() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let with_sp = biqgen(cfg, BiQGenOptions::default());
        let without_sp = biqgen(
            cfg,
            BiQGenOptions {
                sandwich_pruning: false,
                ..BiQGenOptions::default()
            },
        );
        let mut a = EpsParetoArchive::new(cfg.eps);
        for e in &with_sp.entries {
            a.update(&e.inst, &e.result);
        }
        assert!(a.covers_shifted(&without_sp.objectives()));
        assert!(with_sp.stats.verified <= without_sp.stats.verified);
    }

    #[test]
    fn biqgen_does_not_verify_more_than_enum() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let bi = biqgen(cfg, BiQGenOptions::default());
        let en = enum_qgen(cfg, false);
        assert!(bi.stats.verified <= en.stats.verified);
    }

    #[test]
    fn backward_slack_does_not_affect_quality() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let feasible: Vec<Objectives> = evaluate_universe(&mut ev)
            .into_iter()
            .filter(|(_, r)| r.feasible)
            .map(|(_, r)| r.objectives)
            .collect();
        for slack in [0usize, 1, 3, usize::MAX] {
            let out = biqgen(
                cfg,
                BiQGenOptions {
                    backward_slack: slack,
                    ..BiQGenOptions::default()
                },
            );
            let mut a = EpsParetoArchive::new(cfg.eps);
            for e in &out.entries {
                a.update(&e.inst, &e.result);
            }
            assert!(a.covers_shifted(&feasible), "slack {slack}: coverage lost");
        }
    }

    #[test]
    fn sbounds_subsumption() {
        let mut sb = SBounds::default();
        let lo = Instantiation::new(vec![0, 0]);
        let hi = Instantiation::new(vec![3, 3]);
        sb.insert(lo.clone(), hi.clone());
        assert_eq!(sb.pairs.len(), 1);
        // A narrower pair is subsumed.
        sb.insert(
            Instantiation::new(vec![1, 1]),
            Instantiation::new(vec![2, 2]),
        );
        assert_eq!(sb.pairs.len(), 1);
        // A wider pair replaces.
        let wider_hi = Instantiation::new(vec![4, 4]);
        sb.insert(lo.clone(), wider_hi);
        assert_eq!(sb.pairs.len(), 1);
        assert_eq!(sb.pairs[0].hi, Instantiation::new(vec![4, 4]));
        // Pruning is strict on both sides.
        assert!(sb.prunes(&Instantiation::new(vec![2, 2])));
        assert!(!sb.prunes(&lo));
        assert!(!sb.prunes(&Instantiation::new(vec![4, 4])));
        assert!(!sb.prunes(&Instantiation::new(vec![5, 0])));
    }

    #[test]
    fn backward_exploration_reaches_high_coverage_early() {
        // BiQGen's anytime f* should reach its maximum at least as early
        // (in verified instances) as RfQGen's.
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let bi = biqgen(
            cfg,
            BiQGenOptions {
                collect_anytime: true,
                ..BiQGenOptions::default()
            },
        );
        let rf = crate::rfqgen::rfqgen(
            cfg,
            crate::rfqgen::RfQGenOptions {
                collect_anytime: true,
                ..crate::rfqgen::RfQGenOptions::default()
            },
        );
        let peak = |pts: &[AnytimePoint]| -> (f64, u64) {
            let best = pts.iter().map(|p| p.f_star).fold(0.0, f64::max);
            let first = pts
                .iter()
                .find(|p| p.f_star >= best - 1e-9)
                .map(|p| p.verified)
                .unwrap_or(u64::MAX);
            (best, first)
        };
        let (bi_best, bi_first) = peak(&bi.anytime);
        let (rf_best, rf_first) = peak(&rf.anytime);
        assert!((bi_best - rf_best).abs() < 1e-9, "both reach the same f*");
        assert!(
            bi_first <= rf_first,
            "BiQGen should reach peak coverage no later ({bi_first} vs {rf_first})"
        );
    }
}
