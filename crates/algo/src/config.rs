//! The query-generation configuration `C = (G, Q(u_o), P, ε)` (Section III).

use crate::archive::{ArchiveObserver, EpsParetoArchive, UpdateOutcome};
use crate::cancel::CancelToken;
use crate::evaluator::EvalResult;
use fairsqg_graph::{CoverageSpec, Graph, GroupSet, NodeId};
use fairsqg_matcher::{BudgetExceeded, MatchBudget, MatchPlan, MatcherStats};
use fairsqg_measures::{DiversityConfig, MeasureCacheStats, SharedDiversityCache};
use fairsqg_query::Instantiation;
use fairsqg_query::{QueryTemplate, RefinementDomains};
use std::rc::Rc;
use std::sync::Arc;

/// Everything a generation algorithm needs: the graph, the template with its
/// refinement domains, the groups with coverage constraints, the tolerance
/// `ε`, and the diversity-measure configuration.
#[derive(Clone, Copy)]
pub struct Configuration<'a> {
    /// The data graph `G`.
    pub graph: &'a Graph,
    /// The query template `Q(u_o)`.
    pub template: &'a QueryTemplate,
    /// Refinement domains of the template's variables.
    pub domains: &'a RefinementDomains,
    /// Disjoint node groups `P`.
    pub groups: &'a GroupSet,
    /// Coverage constraints `c_i` (one per group).
    pub spec: &'a CoverageSpec,
    /// ε-dominance tolerance (`ε > 0`).
    pub eps: f64,
    /// Diversity measure parameters (λ, relevance, pair sampling).
    pub diversity: DiversityConfig,
    /// Optional **sorted** restriction of the output population: only these
    /// nodes may appear in any instance's answer. Use it to layer
    /// constraints the template language cannot express — e.g. a regular
    /// path query evaluated with `fairsqg-rpq` ("papers citing-transitively
    /// a seminal paper"). `None` = the full label population.
    pub output_restriction: Option<&'a [NodeId]>,
    /// Optional cooperative cancellation/deadline token. Checked by the
    /// search loops before each verification; when it fires, the algorithm
    /// returns its partial archive with
    /// [`Generated::truncated`](crate::Generated::truncated) set.
    pub cancel: Option<&'a CancelToken>,
    /// Per-verification resource caps (candidate-set size, backtracking
    /// steps, match count). When a verification trips a cap, the run stops
    /// and returns its partial archive flagged truncated, with the tripped
    /// cap recorded in [`GenStats::budget_tripped`] — graceful degradation
    /// instead of OOM/livelock on adversarial templates.
    pub budget: MatchBudget,
    /// Run on the un-optimized reference path: candidate sets by full
    /// label-population scan (no value index, no bitsets) and no
    /// relevance/distance memoization. Results are bit-identical to the
    /// default path; only the cost differs. Used for A/B speedup
    /// measurements in the bench harness.
    pub reference_path: bool,
    /// Optional cross-run shared relevance/distance/pair-sample
    /// memoization table (see [`SharedDiversityCache`]). Must have been
    /// built for this graph, the template's output label, and this
    /// configuration's relevance/pair-sampling parameters — the service's
    /// warm-state layer keys its pool accordingly. When set, evaluators
    /// and parallel workers attach it so successive jobs on the same
    /// graph start hot; cached values are exact, so results stay
    /// bit-identical to a cold run. Ignored on the reference path and
    /// when distance caching is disabled.
    pub shared_diversity: Option<&'a Arc<SharedDiversityCache>>,
    /// Optional pre-planned matching order (see
    /// [`fairsqg_matcher::plan_matching_order`]), typically the service's
    /// per-`(template, graph epoch)` warm-pool plan. When unset, each
    /// evaluator plans once from the root instantiation. A plan never
    /// changes results — the matcher re-validates it per instance and
    /// falls back to its in-call greedy order when it doesn't apply.
    pub match_plan: Option<&'a Arc<MatchPlan>>,
    /// Run the matcher's cost-based ordering, semi-join candidate
    /// pruning, and adaptive re-planning (default `true`). `false` keeps
    /// the indexed candidate path but the pre-optimizer fixed greedy
    /// order — the `order` benchmark's baseline. Results are
    /// bit-identical either way; the reference path ignores this flag
    /// (it always runs un-optimized).
    pub match_optimizer: bool,
    /// Optional in-run archive-mutation observer. When set, the anytime
    /// loops offer instances via [`offer`](Self::offer), which reports each
    /// accepted update's exact added/removed entries — the service layer's
    /// streaming subscriptions hang off this hook. `None` (the default)
    /// keeps the non-collecting fast path; results are bit-identical
    /// either way.
    pub progress: Option<&'a dyn ArchiveObserver>,
}

impl<'a> Configuration<'a> {
    /// Creates a configuration, validating basic coherence.
    ///
    /// # Panics
    /// Panics if `eps <= 0` or the coverage spec's group count does not
    /// match the group set.
    pub fn new(
        graph: &'a Graph,
        template: &'a QueryTemplate,
        domains: &'a RefinementDomains,
        groups: &'a GroupSet,
        spec: &'a CoverageSpec,
        eps: f64,
        diversity: DiversityConfig,
    ) -> Self {
        assert!(eps > 0.0, "epsilon must be positive");
        assert_eq!(
            groups.len(),
            spec.len(),
            "coverage spec must have one constraint per group"
        );
        assert_eq!(
            domains.var_count(),
            template.var_count(),
            "domains must cover every template variable"
        );
        Self {
            graph,
            template,
            domains,
            groups,
            spec,
            eps,
            diversity,
            output_restriction: None,
            cancel: None,
            budget: MatchBudget::UNLIMITED,
            reference_path: false,
            shared_diversity: None,
            match_plan: None,
            match_optimizer: true,
            progress: None,
        }
    }

    /// Restricts the output population (see
    /// [`output_restriction`](Self::output_restriction)). The slice must be
    /// sorted ascending and contain only nodes with the template's output
    /// label — foreign-label nodes can never match the output anyway, and
    /// the matcher's pool-restricted candidate path assumes a
    /// label-homogeneous pool. The `FairSqg` façade filters user pools
    /// accordingly before reaching this call.
    pub fn with_output_restriction(mut self, restriction: &'a [NodeId]) -> Self {
        debug_assert!(
            restriction.windows(2).all(|w| w[0] < w[1]),
            "must be sorted"
        );
        debug_assert!(
            restriction
                .iter()
                .all(|&v| self.graph.label(v) == self.template.output_label()),
            "output restriction contains a node whose label differs from the template output's"
        );
        self.output_restriction = Some(restriction);
        self
    }

    /// Attaches a cancellation/deadline token (see
    /// [`cancel`](Self::cancel)).
    pub fn with_cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps per-verification resources (see [`budget`](Self::budget)).
    pub fn with_budget(mut self, budget: MatchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Switches to the un-indexed, un-cached reference path (see
    /// [`reference_path`](Self::reference_path)).
    pub fn with_reference_path(mut self) -> Self {
        self.reference_path = true;
        self
    }

    /// Attaches a cross-run shared diversity memoization table (see
    /// [`shared_diversity`](Self::shared_diversity)).
    pub fn with_shared_diversity(mut self, shared: &'a Arc<SharedDiversityCache>) -> Self {
        self.shared_diversity = Some(shared);
        self
    }

    /// Attaches a pre-planned matching order (see
    /// [`match_plan`](Self::match_plan)).
    pub fn with_match_plan(mut self, plan: &'a Arc<MatchPlan>) -> Self {
        self.match_plan = Some(plan);
        self
    }

    /// Enables or disables the matcher's cost-based optimizer (see
    /// [`match_optimizer`](Self::match_optimizer)).
    pub fn with_match_optimizer(mut self, enabled: bool) -> Self {
        self.match_optimizer = enabled;
        self
    }

    /// Whether verifications should run the matcher's cost-based
    /// optimizer: on by default, off on the reference path and when
    /// explicitly disabled for A/B baselines.
    pub fn matcher_optimized(&self) -> bool {
        self.match_optimizer && !self.reference_path
    }

    /// Attaches an in-run archive observer (see
    /// [`progress`](Self::progress)).
    pub fn with_progress(mut self, observer: &'a dyn ArchiveObserver) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Offers an instance to `archive`, routing the exact mutation to the
    /// attached [`progress`](Self::progress) observer when one is set.
    /// Every anytime loop funnels its `Update` calls through here so a
    /// subscription sees each front improvement as it lands; without an
    /// observer this is exactly [`EpsParetoArchive::update`].
    pub fn offer(
        &self,
        archive: &mut EpsParetoArchive,
        inst: &Instantiation,
        result: &Rc<EvalResult>,
    ) -> UpdateOutcome {
        match self.progress {
            None => archive.update(inst, result),
            Some(obs) => {
                let (outcome, delta) = archive.update_observed(inst, result);
                if let Some(d) = delta {
                    obs.archive_updated(&d);
                }
                outcome
            }
        }
    }

    /// Whether the attached token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// The attached token's hard-stop flag, threaded into matcher
    /// [`MatchOptions`](fairsqg_matcher::MatchOptions) so a watchdog can
    /// abort a verification wedged mid-search.
    pub fn hard_stop_flag(&self) -> Option<&'a std::sync::atomic::AtomicBool> {
        self.cancel.map(|c| c.hard_stop_flag().as_ref())
    }
}

/// Statistics gathered during a generation run; the pruning experiments of
/// Section V compare `verified` across algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GenStats {
    /// Instances constructed by a spawner (lattice nodes touched).
    pub spawned: u64,
    /// Instances actually verified against the graph (match set computed).
    pub verified: u64,
    /// Evaluator cache hits (instance reached by multiple lattice paths).
    pub cache_hits: u64,
    /// Subtrees cut because an instance was infeasible (Lemma 2 pruning).
    pub pruned_infeasible: u64,
    /// Instances skipped by "sandwich" pruning (Lemma 3, BiQGen only).
    pub pruned_sandwich: u64,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// The resource cap that stopped the run early, if any (the run's
    /// result is then flagged truncated).
    pub budget_tripped: Option<BudgetExceeded>,
    /// Worker threads the run actually used (1 for the sequential
    /// algorithms; the effective thread count for `par_enum_qgen`).
    pub threads_used: u64,
    /// Candidate sets served from the sorted value index.
    pub index_candidates: u64,
    /// Candidate sets computed by label-population scan (reference path
    /// or hybrid fallback).
    pub scan_candidates: u64,
    /// Indexed candidate computations that fell back to the scan because
    /// the most selective literal was non-selective.
    pub scan_fallbacks: u64,
    /// Candidate sets restricted to an `incVerify` pool instead of the
    /// label population.
    pub pool_restrictions: u64,
    /// Postings shards skipped wholesale by partition metadata during
    /// indexed range evaluation.
    pub shard_skips: u64,
    /// Pairwise distances served from the diversity measure's cache.
    pub distance_cache_hits: u64,
    /// Pairwise distances computed cold by the diversity measure.
    pub distance_cache_misses: u64,
    /// Cost-based matching orders planned from index cardinality
    /// estimates (amortized by the service's warm plan pool).
    pub order_planned: u64,
    /// Adaptive mid-enumeration suffix re-plans.
    pub order_replans: u64,
    /// Summed estimated candidate cardinalities over planned orders.
    pub est_candidates: u64,
    /// Candidates removed by semi-join pruning before backtracking.
    pub pruned_candidates: u64,
    /// Candidate sets served from the matcher's cross-call memo instead
    /// of being recomputed.
    pub cand_memo_hits: u64,
}

impl GenStats {
    /// Folds matcher and measure hot-path counters into the stats block.
    pub fn record_hot_path(&mut self, matcher: MatcherStats, measure: MeasureCacheStats) {
        self.index_candidates += matcher.index_candidates;
        self.scan_candidates += matcher.scan_candidates;
        self.scan_fallbacks += matcher.scan_fallbacks;
        self.pool_restrictions += matcher.pool_restrictions;
        self.shard_skips += matcher.shard_skips;
        self.order_planned += matcher.order_planned;
        self.order_replans += matcher.order_replans;
        self.est_candidates += matcher.est_candidates;
        self.pruned_candidates += matcher.pruned_candidates;
        self.cand_memo_hits += matcher.cand_memo_hits;
        self.distance_cache_hits += measure.distance_hits;
        self.distance_cache_misses += measure.distance_misses;
    }
}
