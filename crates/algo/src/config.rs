//! The query-generation configuration `C = (G, Q(u_o), P, ε)` (Section III).

use crate::cancel::CancelToken;
use fairsqg_graph::{CoverageSpec, Graph, GroupSet, NodeId};
use fairsqg_matcher::{BudgetExceeded, MatchBudget};
use fairsqg_measures::DiversityConfig;
use fairsqg_query::{QueryTemplate, RefinementDomains};

/// Everything a generation algorithm needs: the graph, the template with its
/// refinement domains, the groups with coverage constraints, the tolerance
/// `ε`, and the diversity-measure configuration.
#[derive(Clone, Copy)]
pub struct Configuration<'a> {
    /// The data graph `G`.
    pub graph: &'a Graph,
    /// The query template `Q(u_o)`.
    pub template: &'a QueryTemplate,
    /// Refinement domains of the template's variables.
    pub domains: &'a RefinementDomains,
    /// Disjoint node groups `P`.
    pub groups: &'a GroupSet,
    /// Coverage constraints `c_i` (one per group).
    pub spec: &'a CoverageSpec,
    /// ε-dominance tolerance (`ε > 0`).
    pub eps: f64,
    /// Diversity measure parameters (λ, relevance, pair sampling).
    pub diversity: DiversityConfig,
    /// Optional **sorted** restriction of the output population: only these
    /// nodes may appear in any instance's answer. Use it to layer
    /// constraints the template language cannot express — e.g. a regular
    /// path query evaluated with `fairsqg-rpq` ("papers citing-transitively
    /// a seminal paper"). `None` = the full label population.
    pub output_restriction: Option<&'a [NodeId]>,
    /// Optional cooperative cancellation/deadline token. Checked by the
    /// search loops before each verification; when it fires, the algorithm
    /// returns its partial archive with
    /// [`Generated::truncated`](crate::Generated::truncated) set.
    pub cancel: Option<&'a CancelToken>,
    /// Per-verification resource caps (candidate-set size, backtracking
    /// steps, match count). When a verification trips a cap, the run stops
    /// and returns its partial archive flagged truncated, with the tripped
    /// cap recorded in [`GenStats::budget_tripped`] — graceful degradation
    /// instead of OOM/livelock on adversarial templates.
    pub budget: MatchBudget,
}

impl<'a> Configuration<'a> {
    /// Creates a configuration, validating basic coherence.
    ///
    /// # Panics
    /// Panics if `eps <= 0` or the coverage spec's group count does not
    /// match the group set.
    pub fn new(
        graph: &'a Graph,
        template: &'a QueryTemplate,
        domains: &'a RefinementDomains,
        groups: &'a GroupSet,
        spec: &'a CoverageSpec,
        eps: f64,
        diversity: DiversityConfig,
    ) -> Self {
        assert!(eps > 0.0, "epsilon must be positive");
        assert_eq!(
            groups.len(),
            spec.len(),
            "coverage spec must have one constraint per group"
        );
        assert_eq!(
            domains.var_count(),
            template.var_count(),
            "domains must cover every template variable"
        );
        Self {
            graph,
            template,
            domains,
            groups,
            spec,
            eps,
            diversity,
            output_restriction: None,
            cancel: None,
            budget: MatchBudget::UNLIMITED,
        }
    }

    /// Restricts the output population (see
    /// [`output_restriction`](Self::output_restriction)). The slice must be
    /// sorted ascending.
    pub fn with_output_restriction(mut self, restriction: &'a [NodeId]) -> Self {
        debug_assert!(
            restriction.windows(2).all(|w| w[0] < w[1]),
            "must be sorted"
        );
        self.output_restriction = Some(restriction);
        self
    }

    /// Attaches a cancellation/deadline token (see
    /// [`cancel`](Self::cancel)).
    pub fn with_cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps per-verification resources (see [`budget`](Self::budget)).
    pub fn with_budget(mut self, budget: MatchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Whether the attached token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

/// Statistics gathered during a generation run; the pruning experiments of
/// Section V compare `verified` across algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GenStats {
    /// Instances constructed by a spawner (lattice nodes touched).
    pub spawned: u64,
    /// Instances actually verified against the graph (match set computed).
    pub verified: u64,
    /// Evaluator cache hits (instance reached by multiple lattice paths).
    pub cache_hits: u64,
    /// Subtrees cut because an instance was infeasible (Lemma 2 pruning).
    pub pruned_infeasible: u64,
    /// Instances skipped by "sandwich" pruning (Lemma 3, BiQGen only).
    pub pruned_sandwich: u64,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// The resource cap that stopped the run early, if any (the run's
    /// result is then flagged truncated).
    pub budget_tripped: Option<BudgetExceeded>,
}
