//! Cooperative cancellation and deadlines for generation runs.
//!
//! The verification cost `T_q` dominates every algorithm (Section V), so a
//! runaway template can pin a core for minutes. A [`CancelToken`] threaded
//! through [`Configuration`](crate::Configuration) lets a caller — the
//! service layer, a CLI timeout, a test — stop a run between
//! verifications: the algorithms return the partial ε-Pareto archive built
//! so far, flagged [`Generated::truncated`](crate::Generated::truncated).
//!
//! Cancellation is *cooperative*: the token is checked before each
//! verification (the unit of work), so cancellation latency is bounded by
//! one `T_q`, and the archive is never left mid-update.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cancellation token with an optional deadline.
///
/// Cheap to clone (the flag is shared); a clone observes and controls the
/// same cancellation state, while the deadline is per-token value state set
/// at construction.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Hard-stop escalation: unlike `flag` (checked *between*
    /// verifications), this is checked *inside* the matcher's backtracking
    /// loops, so it stops even a verification wedged in a long
    /// gallop/intersection. Set by the service watchdog when cooperative
    /// cancellation has not taken effect by deadline + grace.
    hard: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires unless [`cancel`](Self::cancel)ed.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires `budget` from now (or when cancelled, whichever
    /// comes first).
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            hard: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// Requests cancellation. Every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the run should stop: explicitly cancelled, or past the
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Whether [`cancel`](Self::cancel) was called, ignoring the deadline.
    ///
    /// Lets a scheduler distinguish an explicit cancellation (skip the job)
    /// from a deadline that has already lapsed (still run it — the
    /// generation returns immediately with an empty archive flagged
    /// truncated, which is the contract deadline-bound callers expect).
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Remaining time until the deadline (`None` when no deadline is set).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Escalates to a **hard stop**: the matcher's inner backtracking loops
    /// poll this flag and abort the in-flight verification, so it takes
    /// effect even when the run is wedged *inside* one verification and
    /// cooperative cancellation (checked only between verifications) cannot
    /// fire. Implies [`cancel`](Self::cancel).
    pub fn hard_stop(&self) {
        self.flag.store(true, Ordering::Release);
        self.hard.store(true, Ordering::Release);
    }

    /// Whether [`hard_stop`](Self::hard_stop) was requested.
    pub fn hard_stop_requested(&self) -> bool {
        self.hard.load(Ordering::Acquire)
    }

    /// The shared hard-stop flag, for threading into matcher
    /// [`MatchOptions`](fairsqg_matcher::MatchOptions) inner-loop checks.
    pub fn hard_stop_flag(&self) -> &Arc<AtomicBool> {
        &self.hard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancellation_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn hard_stop_is_shared_and_implies_cancel() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.hard_stop_requested());
        c.hard_stop();
        assert!(t.hard_stop_requested() && t.is_cancelled() && t.cancel_requested());
        assert!(t
            .hard_stop_flag()
            .load(std::sync::atomic::Ordering::Acquire));
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }
}
