//! The ε-Pareto archive maintained by procedure `Update` (Fig. 5).
//!
//! The archive discretizes the bi-objective space into boxes
//! (`Box(q) = (δ_ε(q), f_ε(q))`, see [`Objectives::boxed`]) and keeps at
//! most one representative instance per non-dominated box. `Update`'s three
//! cases:
//!
//! 1. **Replacing boxes** — the new instance's box strictly dominates
//!    existing boxes: evict all of them, insert the new instance.
//! 2. **Replacing instances** — the new instance falls into an occupied
//!    box: keep whichever representative dominates the other (ties keep the
//!    incumbent).
//! 3. **Adding a non-dominated box** — no existing box dominates (or
//!    equals) the new box: insert.
//!
//! The box count — hence the archive size — is bounded by
//! `log(1+δ_max)·log(1+f_max)/log²(1+ε)` and by the per-axis chain bound
//! `log(1+δ_max)/log(1+ε)` of Theorem 2.

use crate::evaluator::EvalResult;
use fairsqg_measures::{BoxCoord, Objectives};
use fairsqg_query::Instantiation;
use std::rc::Rc;

/// One archived instance and its verified state.
#[derive(Debug, Clone)]
pub struct ArchiveEntry {
    /// The instantiation.
    pub inst: Instantiation,
    /// Its verified evaluation.
    pub result: Rc<EvalResult>,
    /// Cached box under the archive's current ε.
    pub bx: BoxCoord,
}

impl ArchiveEntry {
    /// The entry's objective coordinate.
    #[inline]
    pub fn objectives(&self) -> Objectives {
        self.result.objectives
    }
}

/// What `Update` did with an offered instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Case 1: the instance's box dominates `n` boxes that were evicted.
    ReplacedBoxes(usize),
    /// Case 2: the instance replaced the incumbent of its box.
    ReplacedInstance,
    /// Case 2: the incumbent of the instance's box was kept.
    KeptIncumbent,
    /// Case 3: a new non-dominated box was added.
    AddedNewBox,
    /// The instance's box is dominated (or equaled) by an existing box.
    Rejected,
}

impl UpdateOutcome {
    /// Whether the offered instance is now in the archive.
    pub fn accepted(self) -> bool {
        !matches!(self, UpdateOutcome::KeptIncumbent | UpdateOutcome::Rejected)
    }

    /// Whether the insertion grew the archive (Update "Case 3" in the
    /// online algorithm's size accounting).
    pub fn grew(self) -> bool {
        matches!(self, UpdateOutcome::AddedNewBox)
    }
}

/// The exact mutation one accepted `Update` applied to the archive.
///
/// Streams of deltas are lossless: replaying `added`/`removed` in version
/// order against an empty set reconstructs the archive's entry set exactly
/// (order-insensitively), which is what the service layer's subscription
/// frames rely on.
#[derive(Debug, Clone)]
pub struct ArchiveDelta {
    /// Archive version *after* this mutation (see
    /// [`EpsParetoArchive::version`]).
    pub version: u64,
    /// Entries the mutation inserted (one per accepted update).
    pub added: Vec<ArchiveEntry>,
    /// Entries the mutation evicted (Case 1) or replaced (Case 2).
    pub removed: Vec<ArchiveEntry>,
}

/// A sink for in-run archive mutations, threaded through
/// [`Configuration::progress`](crate::Configuration::progress).
///
/// Called synchronously on the generation thread, once per accepted
/// update, *after* the archive has been mutated — so
/// `delta.version == archive.version()` at call time. Implementations must
/// be cheap (the hook sits between verifications on the hot loop) and use
/// interior mutability: the service layer's subscription sink renders the
/// delta to wire form and hands it to a channel. `Sync` is required
/// because [`Configuration`](crate::Configuration) is shared across
/// parallel workers.
pub trait ArchiveObserver: Sync {
    /// One accepted archive mutation.
    fn archive_updated(&self, delta: &ArchiveDelta);
}

/// An ε-Pareto archive of feasible instances.
#[derive(Debug, Clone)]
pub struct EpsParetoArchive {
    eps: f64,
    entries: Vec<ArchiveEntry>,
    version: u64,
}

impl EpsParetoArchive {
    /// Creates an empty archive with tolerance `eps > 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0, "epsilon must be positive");
        Self {
            eps,
            entries: Vec::new(),
            version: 0,
        }
    }

    /// Current tolerance ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Monotonic mutation counter: incremented once per accepted update,
    /// removal, or rescale. Two archives built by the same offer sequence
    /// have equal versions, and a subscriber that has applied deltas up to
    /// version `v` holds exactly the entry set of the archive at `v`.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Archived entries (unspecified order).
    #[inline]
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Number of archived instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Objective coordinates of all entries.
    pub fn objectives(&self) -> Vec<Objectives> {
        self.entries.iter().map(|e| e.objectives()).collect()
    }

    /// Procedure `Update` (Fig. 5). Only feasible instances may be offered.
    pub fn update(&mut self, inst: &Instantiation, result: &Rc<EvalResult>) -> UpdateOutcome {
        self.update_collect(inst, result, false).0
    }

    /// [`update`](Self::update), additionally reporting the exact mutation
    /// as an [`ArchiveDelta`] when the offer was accepted (`None` on
    /// `KeptIncumbent`/`Rejected`). The delta is what the service layer
    /// streams to `subscribe`d clients.
    pub fn update_observed(
        &mut self,
        inst: &Instantiation,
        result: &Rc<EvalResult>,
    ) -> (UpdateOutcome, Option<ArchiveDelta>) {
        self.update_collect(inst, result, true)
    }

    fn update_collect(
        &mut self,
        inst: &Instantiation,
        result: &Rc<EvalResult>,
        collect: bool,
    ) -> (UpdateOutcome, Option<ArchiveDelta>) {
        debug_assert!(
            result.feasible,
            "Update is only defined on feasible instances"
        );
        let bx = result.objectives.boxed(self.eps);
        let new_entry = || ArchiveEntry {
            inst: inst.clone(),
            result: Rc::clone(result),
            bx,
        };
        let delta = |version: u64, added: Vec<ArchiveEntry>, removed: Vec<ArchiveEntry>| {
            collect.then_some(ArchiveDelta {
                version,
                added,
                removed,
            })
        };

        // Case 1: box-level dominance over existing boxes.
        let dominated: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| bx.dominates(&e.bx))
            .map(|(i, _)| i)
            .collect();
        if !dominated.is_empty() {
            let n = dominated.len();
            let mut removed = Vec::with_capacity(if collect { n } else { 0 });
            for &i in dominated.iter().rev() {
                let evicted = self.entries.swap_remove(i);
                if collect {
                    removed.push(evicted);
                }
            }
            let entry = new_entry();
            self.version += 1;
            let d = delta(self.version, vec![entry.clone()], removed);
            self.entries.push(entry);
            return (UpdateOutcome::ReplacedBoxes(n), d);
        }

        // Case 2: same box as an incumbent — keep the dominating one.
        if let Some(i) = self.entries.iter().position(|e| e.bx == bx) {
            if result.objectives.dominates(&self.entries[i].objectives()) {
                let entry = new_entry();
                self.version += 1;
                let old = std::mem::replace(&mut self.entries[i], entry.clone());
                let d = delta(self.version, vec![entry], vec![old]);
                return (UpdateOutcome::ReplacedInstance, d);
            }
            return (UpdateOutcome::KeptIncumbent, None);
        }

        // Case 3: add if no existing box dominates-or-equals the new box.
        if self.entries.iter().all(|e| !e.bx.dominates_or_eq(&bx)) {
            let entry = new_entry();
            self.version += 1;
            let d = delta(self.version, vec![entry.clone()], Vec::new());
            self.entries.push(entry);
            return (UpdateOutcome::AddedNewBox, d);
        }
        (UpdateOutcome::Rejected, None)
    }

    /// Removes and returns the entry at `idx` (used by the online
    /// algorithm's nearest-neighbor replacement).
    pub fn remove(&mut self, idx: usize) -> ArchiveEntry {
        self.version += 1;
        self.entries.swap_remove(idx)
    }

    /// Grows the tolerance to `new_eps ≥ eps` and re-inserts every entry
    /// under the coarser discretization (Lemma 4: ε-dominance is preserved
    /// when ε grows, so no covered instance escapes).
    pub fn rescale(&mut self, new_eps: f64) {
        assert!(new_eps >= self.eps, "epsilon may only grow");
        if new_eps == self.eps {
            return;
        }
        let old = std::mem::take(&mut self.entries);
        self.eps = new_eps;
        self.version += 1;
        for e in old {
            self.update(&e.inst, &e.result);
        }
    }

    /// Whether every objective in `universe` is ε-dominated (under the
    /// box-shifted guarantee `(1+ε)(1+obj) ≥ 1+other`) by some entry.
    /// Used by tests and the correctness audit in the benchmarks.
    ///
    /// This single-factor bound holds for every instance ever *offered* to
    /// a fixed-ε archive (box dominance is transitive at the box level).
    /// After [`rescale`](Self::rescale) chains the guarantee weakens to one
    /// extra factor — use [`covers_shifted_within`](Self::covers_shifted_within)
    /// with `(1+ε)²−1` there.
    pub fn covers_shifted(&self, universe: &[Objectives]) -> bool {
        self.covers_shifted_within(universe, self.eps)
    }

    /// Like [`covers_shifted`](Self::covers_shifted) with an explicit
    /// effective tolerance.
    pub fn covers_shifted_within(&self, universe: &[Objectives], eps_eff: f64) -> bool {
        let factor = 1.0 + eps_eff;
        universe.iter().all(|u| {
            self.entries.iter().any(|e| {
                let o = e.objectives();
                factor * (1.0 + o.delta) >= 1.0 + u.delta && factor * (1.0 + o.fcov) >= 1.0 + u.fcov
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalResult;

    fn entry(delta: f64, fcov: f64) -> (Instantiation, Rc<EvalResult>) {
        // Encode objectives into a fake instantiation for identity.
        let inst = Instantiation::new(vec![delta as u16, fcov as u16]);
        let result = Rc::new(EvalResult {
            matches: Vec::new(),
            counts: Vec::new(),
            objectives: Objectives::new(delta, fcov),
            feasible: true,
        });
        (inst, result)
    }

    #[test]
    fn first_insert_adds_box() {
        let mut a = EpsParetoArchive::new(0.3);
        let (i, r) = entry(2.0, 2.0);
        assert_eq!(a.update(&i, &r), UpdateOutcome::AddedNewBox);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dominating_box_replaces() {
        let mut a = EpsParetoArchive::new(0.3);
        let (i1, r1) = entry(2.0, 2.0);
        a.update(&i1, &r1);
        let (i2, r2) = entry(10.0, 10.0);
        assert_eq!(a.update(&i2, &r2), UpdateOutcome::ReplacedBoxes(1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].inst, i2);
    }

    #[test]
    fn same_box_keeps_dominating_instance() {
        let mut a = EpsParetoArchive::new(0.5);
        let (i1, r1) = entry(2.0, 2.0);
        a.update(&i1, &r1);
        // 2.2 is in the same box under eps=0.5 and dominates (2.0, 2.0).
        let (i2, r2) = entry(2.2, 2.2);
        assert_eq!(r2.objectives.boxed(0.5), r1.objectives.boxed(0.5));
        assert_eq!(a.update(&i2, &r2), UpdateOutcome::ReplacedInstance);
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].inst, i2);
        // Offering the weaker one back keeps the incumbent.
        assert_eq!(a.update(&i1, &r1), UpdateOutcome::KeptIncumbent);
    }

    #[test]
    fn incomparable_boxes_coexist() {
        let mut a = EpsParetoArchive::new(0.1);
        let (i1, r1) = entry(10.0, 1.0);
        let (i2, r2) = entry(1.0, 10.0);
        assert_eq!(a.update(&i1, &r1), UpdateOutcome::AddedNewBox);
        assert_eq!(a.update(&i2, &r2), UpdateOutcome::AddedNewBox);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn dominated_box_rejected() {
        let mut a = EpsParetoArchive::new(0.1);
        let (i1, r1) = entry(10.0, 10.0);
        a.update(&i1, &r1);
        let (i2, r2) = entry(1.0, 1.0);
        assert_eq!(a.update(&i2, &r2), UpdateOutcome::Rejected);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn archive_covers_everything_offered() {
        // Paper's Example 5/7 shape plus noise.
        let mut a = EpsParetoArchive::new(0.3);
        let offers = [
            (0.0, 1.0),
            (1.0, 1.0),
            (0.75, 2.0),
            (0.5, 3.0),
            (2.0, 0.5),
            (1.5, 1.5),
        ];
        let mut universe = Vec::new();
        for &(d, f) in &offers {
            let (i, r) = entry(d, f);
            a.update(&i, &r);
            universe.push(Objectives::new(d, f));
        }
        assert!(a.covers_shifted(&universe));
    }

    #[test]
    fn size_bound_holds() {
        // Theorem 2: |archive| ≤ number of non-dominated boxes; insert a
        // dense grid and check the bound log(1+max)/log(1+eps) per axis.
        let eps = 0.3;
        let mut a = EpsParetoArchive::new(eps);
        let maxv = 100.0f64;
        let mut i = 0u16;
        for d in 0..40 {
            for f in 0..40 {
                let (inst, r) = {
                    let inst = Instantiation::new(vec![i, d, f]);
                    i = i.wrapping_add(1);
                    let result = Rc::new(EvalResult {
                        matches: Vec::new(),
                        counts: Vec::new(),
                        objectives: Objectives::new(d as f64 * maxv / 39.0, f as f64 * maxv / 39.0),
                        feasible: true,
                    });
                    (inst, result)
                };
                a.update(&inst, &r);
            }
        }
        let bound = ((1.0 + maxv).ln() / (1.0 + eps).ln()).ceil() as usize + 1;
        assert!(
            a.len() <= bound,
            "archive size {} exceeds per-axis bound {}",
            a.len(),
            bound
        );
    }

    #[test]
    fn rescale_preserves_coverage() {
        let mut a = EpsParetoArchive::new(0.05);
        let mut universe = Vec::new();
        for k in 0..30 {
            let d = 1.0 + (k as f64) * 0.7;
            let f = 30.0 - (k as f64) * 0.9;
            let (i, r) = entry(d, f.max(0.0));
            a.update(&i, &r);
            universe.push(Objectives::new(d, f.max(0.0)));
        }
        let before = a.len();
        a.rescale(0.5);
        assert!(a.len() <= before);
        // One rescale step may compound two box guarantees: (1+ε)² − 1.
        assert!(a.covers_shifted_within(&universe, 1.5f64 * 1.5 - 1.0));
        assert_eq!(a.eps(), 0.5);
    }

    #[test]
    #[should_panic(expected = "epsilon may only grow")]
    fn rescale_rejects_shrinking() {
        let mut a = EpsParetoArchive::new(0.5);
        a.rescale(0.1);
    }

    #[test]
    fn version_counts_accepted_mutations_only() {
        let mut a = EpsParetoArchive::new(0.1);
        assert_eq!(a.version(), 0);
        let (i1, r1) = entry(10.0, 10.0);
        a.update(&i1, &r1);
        assert_eq!(a.version(), 1);
        // Rejected offer: version unchanged.
        let (i2, r2) = entry(1.0, 1.0);
        assert_eq!(a.update(&i2, &r2), UpdateOutcome::Rejected);
        assert_eq!(a.version(), 1);
        // Re-offering the incumbent's coordinates keeps it: unchanged.
        assert_eq!(a.update(&i1, &r1), UpdateOutcome::KeptIncumbent);
        assert_eq!(a.version(), 1);
    }

    #[test]
    fn observed_updates_replay_to_identical_entry_set() {
        use std::collections::BTreeSet;
        // Replay every delta against a bag keyed by instantiation and
        // check it converges to the archive's final entry set.
        let offers = [
            (0.0, 1.0),
            (1.0, 1.0),
            (0.75, 2.0),
            (0.5, 3.0),
            (2.0, 0.5),
            (10.0, 10.0), // dominates everything so far: Case 1 eviction
            (10.5, 10.5), // same box under eps=0.3: Case 2 replacement
            (1.5, 1.5),   // dominated: rejected, no delta
        ];
        let mut a = EpsParetoArchive::new(0.3);
        let mut replayed: BTreeSet<Vec<u16>> = BTreeSet::new();
        let mut last_version = 0;
        for &(d, f) in &offers {
            let (i, r) = entry(d, f);
            let (outcome, delta) = a.update_observed(&i, &r);
            match delta {
                Some(delta) => {
                    assert!(outcome.accepted());
                    assert_eq!(delta.version, a.version());
                    assert!(delta.version > last_version, "versions must advance");
                    last_version = delta.version;
                    for e in &delta.removed {
                        assert!(replayed.remove(e.inst.indices()), "removed unknown entry");
                    }
                    for e in &delta.added {
                        assert!(replayed.insert(e.inst.indices().to_vec()), "double add");
                    }
                }
                None => assert!(!outcome.accepted()),
            }
        }
        let final_set: BTreeSet<Vec<u16>> = a
            .entries()
            .iter()
            .map(|e| e.inst.indices().to_vec())
            .collect();
        assert_eq!(replayed, final_set);
    }
}
