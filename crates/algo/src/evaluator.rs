//! Instance verification: matching, measuring, caching, and `incVerify`.

use crate::config::{Configuration, GenStats};
use fairsqg_graph::NodeId;
use fairsqg_matcher::{
    plan_matching_order, try_match_output_set_with, BudgetExceeded, MatchOptions, MatchPlan,
    MatchScratch, MatcherStats,
};
use fairsqg_measures::{coverage_score, is_feasible, DiversityMeasure, Objectives};
use fairsqg_query::{ConcreteQuery, Instantiation};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// The verified state of one query instance.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The output match set `q(u_o, G)`, sorted ascending.
    pub matches: Vec<NodeId>,
    /// Per-group match counts `|q(G) ∩ P_i|`.
    pub counts: Vec<u32>,
    /// The instance's bi-objective coordinate `(δ(q), f(q))`.
    pub objectives: Objectives,
    /// Whether the instance is feasible (`|q(G) ∩ P_i| ≥ c_i` for all `i`).
    pub feasible: bool,
}

/// Verifies instances against the graph with memoization.
///
/// `incVerify` (Section IV): when the caller knows a verified lattice
/// *ancestor* of the instance, the ancestor's match set bounds the
/// instance's (Lemma 2 (2): refinement shrinks match sets), so only those
/// nodes are re-checked as output candidates.
pub struct Evaluator<'a> {
    cfg: Configuration<'a>,
    measure: DiversityMeasure<'a>,
    cache: HashMap<Instantiation, Rc<EvalResult>>,
    verified: u64,
    cache_hits: u64,
    budget_tripped: Option<BudgetExceeded>,
    /// The thread's matcher counters at construction time; the delta
    /// since then is what this evaluator's run contributed.
    matcher_baseline: MatcherStats,
    /// The cost-based matching order for this template shape, built once
    /// per evaluator when the configuration did not bring a (warm-pool)
    /// plan of its own. `None` on the reference path / with the
    /// optimizer disabled.
    plan: Option<Arc<MatchPlan>>,
    /// Reusable matcher working memory: one evaluator issues thousands of
    /// verify calls over the same template shape, so candidate vectors,
    /// membership bitsets, and the assignment buffer are allocated once
    /// here instead of per call.
    scratch: MatchScratch,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for a configuration.
    pub fn new(cfg: Configuration<'a>) -> Self {
        let mut diversity = cfg.diversity;
        if cfg.reference_path {
            diversity.cache_distances = false;
        }
        let mut measure = DiversityMeasure::new(cfg.graph, cfg.template.output_label(), diversity);
        if let Some(shared) = cfg.shared_diversity {
            if !cfg.reference_path && cfg.diversity.cache_distances {
                measure.attach_shared_cache(Arc::clone(shared));
            }
        }
        // Baseline first, then plan: the planning work (order_planned,
        // est_candidates) is attributed to this evaluator's delta.
        let matcher_baseline = fairsqg_matcher::matcher_stats();
        let plan = if cfg.matcher_optimized() && cfg.match_plan.is_none() {
            let root = ConcreteQuery::materialize(
                cfg.template,
                cfg.domains,
                &Instantiation::root(cfg.domains),
            );
            Some(Arc::new(plan_matching_order(cfg.graph, &root)))
        } else {
            None
        };
        Self {
            cfg,
            measure,
            cache: HashMap::new(),
            verified: 0,
            cache_hits: 0,
            budget_tripped: None,
            matcher_baseline,
            plan,
            scratch: MatchScratch::default(),
        }
    }

    /// The configuration this evaluator serves.
    pub fn config(&self) -> &Configuration<'a> {
        &self.cfg
    }

    /// The diversity measure (exposes `δ_max = |V_uo|` for indicators).
    pub fn measure(&self) -> &DiversityMeasure<'a> {
        &self.measure
    }

    /// Number of instances actually verified (not served from cache).
    pub fn verified_count(&self) -> u64 {
        self.verified
    }

    /// Number of cache hits.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits
    }

    /// The resource cap a verification tripped, if any. Once set, the
    /// search loops stop and flag their partial archive truncated.
    pub fn budget_tripped(&self) -> Option<BudgetExceeded> {
        self.budget_tripped
    }

    /// Whether the run should stop: the cancel token fired, or a
    /// verification tripped its resource budget. This is the single check
    /// every search loop performs between verifications.
    pub fn should_stop(&self) -> bool {
        self.budget_tripped.is_some() || self.cfg.cancelled()
    }

    /// Returns the cached result for `inst`, if already verified.
    pub fn cached(&self, inst: &Instantiation) -> Option<Rc<EvalResult>> {
        self.cache.get(inst).cloned()
    }

    /// Verifies `inst` from scratch.
    pub fn verify(&mut self, inst: &Instantiation) -> Rc<EvalResult> {
        self.verify_inc(inst, None)
    }

    /// Verifies `inst`, optionally restricting output candidates to a
    /// verified ancestor's match set (`incVerify`).
    ///
    /// Soundness requires `inst` to refine the ancestor; this is asserted in
    /// debug builds via the cached ancestor lookup at call sites.
    pub fn verify_inc(
        &mut self,
        inst: &Instantiation,
        ancestor_matches: Option<&[NodeId]>,
    ) -> Rc<EvalResult> {
        if let Some(hit) = self.cache.get(inst) {
            self.cache_hits += 1;
            return Rc::clone(hit);
        }
        self.verified += 1;
        let query = ConcreteQuery::materialize(self.cfg.template, self.cfg.domains, inst);
        // An ancestor's match set is already inside the configuration's
        // output restriction (the root was verified under it), so the
        // tighter of the two suffices.
        let restriction = ancestor_matches.or(self.cfg.output_restriction);
        let matches = match try_match_output_set_with(
            self.cfg.graph,
            &query,
            MatchOptions {
                restrict_output: restriction,
                use_index: !self.cfg.reference_path,
                optimize: self.cfg.matcher_optimized(),
                plan: self
                    .cfg
                    .match_plan
                    .map(|p| p.as_ref())
                    .or(self.plan.as_deref()),
                stop: self.cfg.hard_stop_flag(),
            },
            &self.cfg.budget,
            &mut self.scratch,
        ) {
            Ok(matches) => matches,
            Err(tripped) => {
                // The result is unknown, not infeasible: record the trip
                // (stopping the run) and hand back a conservative
                // empty/infeasible placeholder that is *not* cached, so it
                // can never masquerade as a real verification later.
                self.budget_tripped.get_or_insert(tripped);
                return Rc::new(EvalResult {
                    matches: Vec::new(),
                    counts: vec![0; self.cfg.groups.len()],
                    objectives: Objectives::new(0.0, 0.0),
                    feasible: false,
                });
            }
        };
        let counts = self.cfg.groups.count_in_groups(&matches);
        let delta = self.measure.score(&matches);
        let fcov = coverage_score(&counts, self.cfg.spec);
        let feasible = is_feasible(&counts, self.cfg.spec);
        let result = Rc::new(EvalResult {
            matches,
            counts,
            objectives: Objectives::new(delta, fcov),
            feasible,
        });
        self.cache.insert(inst.clone(), Rc::clone(&result));
        result
    }

    /// Cheap certain-infeasibility test **without subgraph matching**: the
    /// match set of `u_o` is contained in its literal-filtered candidate
    /// set, so if the candidates already fail a group constraint the
    /// instance cannot be feasible. `true` means *certainly infeasible*;
    /// `false` is inconclusive. Costs `O(|V(u_o)|)` instead of `T_q`.
    pub fn quick_infeasible(&self, inst: &Instantiation) -> bool {
        if let Some(hit) = self.cache.get(inst) {
            return !hit.feasible;
        }
        let query = ConcreteQuery::materialize(self.cfg.template, self.cfg.domains, inst);
        // Tightest known output pool: the best cached direct parent's
        // match set bounds this instance's matches (Lemma 2) and is never
        // looser than the configured restriction (the parent was verified
        // under it).
        let parent_pool = if self.cfg.reference_path {
            None
        } else {
            self.best_cached_parent(inst).map(Rc::clone)
        };
        let pool = parent_pool
            .as_ref()
            .map(|r| r.matches.as_slice())
            .or(self.cfg.output_restriction);
        let cands = match pool {
            Some(pool) => fairsqg_matcher::candidates_from_pool(
                self.cfg.graph,
                &query,
                self.cfg.template.output(),
                pool,
            ),
            None if self.cfg.reference_path => {
                fairsqg_matcher::candidates_scan(self.cfg.graph, &query, self.cfg.template.output())
            }
            None => fairsqg_matcher::candidates(self.cfg.graph, &query, self.cfg.template.output()),
        };
        let counts = self.cfg.groups.count_in_groups(&cands);
        !is_feasible(&counts, self.cfg.spec)
    }

    /// The cached direct lattice parent with the smallest match set.
    fn best_cached_parent(&self, inst: &Instantiation) -> Option<&Rc<EvalResult>> {
        let mut best: Option<&Rc<EvalResult>> = None;
        for x in 0..inst.var_count() {
            if let Some(parent) = inst.relax_step(x) {
                if let Some(r) = self.cache.get(&parent) {
                    if best
                        .as_ref()
                        .is_none_or(|b| r.matches.len() < b.matches.len())
                    {
                        best = Some(r);
                    }
                }
            }
        }
        best
    }

    /// Verifies `inst` using the best cached lattice ancestor (the verified
    /// parent with the smallest match set) to restrict candidates.
    pub fn verify_with_best_parent(&mut self, inst: &Instantiation) -> Rc<EvalResult> {
        if let Some(hit) = self.cache.get(inst) {
            self.cache_hits += 1;
            return Rc::clone(hit);
        }
        match self.best_cached_parent(inst).map(Rc::clone) {
            Some(parent) => self.verify_inc(inst, Some(&parent.matches)),
            None => self.verify_inc(inst, None),
        }
    }

    /// Folds this evaluator's hot-path counters (matcher candidate paths,
    /// measure caches) into a stats block. Counters are thread-local, so
    /// the matcher delta is exact as long as no other evaluator ran on
    /// this thread since construction.
    pub fn apply_hot_path_stats(&self, stats: &mut GenStats) {
        let matcher = fairsqg_matcher::matcher_stats().delta_since(self.matcher_baseline);
        stats.record_hot_path(matcher, self.measure.cache_stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::talent_fixture;

    #[test]
    fn verify_caches() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let root = Instantiation::root(fx.domains());
        let a = ev.verify(&root);
        let b = ev.verify(&root);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(ev.verified_count(), 1);
        assert_eq!(ev.cache_hit_count(), 1);
    }

    #[test]
    fn inc_verify_agrees_with_full_verify() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let root = Instantiation::root(fx.domains());

        let mut full = Evaluator::new(cfg);
        let mut inc = Evaluator::new(cfg);
        let root_res = inc.verify(&root);

        // Walk a refinement chain; verify children incrementally vs fresh.
        let mut chain = vec![root.clone()];
        let mut cur = root;
        loop {
            let mut advanced = false;
            for x in 0..fx.domains().var_count() {
                if let Some(next) = cur.refine_step(x, fx.domains()) {
                    cur = next;
                    chain.push(cur.clone());
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        let mut parent_matches = root_res.matches.clone();
        for inst in &chain[1..] {
            let fresh = full.verify(inst);
            let incremental = inc.verify_inc(inst, Some(&parent_matches));
            assert_eq!(fresh.matches, incremental.matches);
            assert_eq!(fresh.counts, incremental.counts);
            assert!(
                (fresh.objectives.delta - incremental.objectives.delta).abs() < 1e-9
                    && (fresh.objectives.fcov - incremental.objectives.fcov).abs() < 1e-9
            );
            parent_matches = incremental.matches.clone();
        }
    }

    #[test]
    fn refinement_monotonicity_lemma2() {
        // Lemma 2 (2): q' ⪰ q  ⇒  q'(G) ⊆ q(G) and δ(q') ≤ δ(q).
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let lat = fairsqg_query::InstanceLattice::new(fx.domains());
        for inst in lat.enumerate() {
            let r = ev.verify(&inst);
            for (_, child) in lat.children(&inst) {
                let rc = ev.verify(&child);
                assert!(
                    rc.matches.iter().all(|m| r.matches.contains(m)),
                    "match-set containment violated"
                );
                assert!(
                    rc.objectives.delta <= r.objectives.delta + 1e-9,
                    "diversity monotonicity violated"
                );
            }
        }
    }

    #[test]
    fn verify_with_best_parent_is_consistent() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let lat = fairsqg_query::InstanceLattice::new(fx.domains());

        let mut plain = Evaluator::new(cfg);
        let mut smart = Evaluator::new(cfg);
        // BFS order guarantees parents verified before children.
        for inst in lat.enumerate() {
            let a = plain.verify(&inst);
            let b = smart.verify_with_best_parent(&inst);
            assert_eq!(a.matches, b.matches, "mismatch at {inst:?}");
        }
    }
}
