//! Enumeration baselines: `EnumQGen` (naive ε-Pareto, Theorem 1's Δ₂ᵖ
//! algorithm) and `Kungs` (exact Pareto set via Kung's algorithm [13]).

use crate::archive::{ArchiveEntry, EpsParetoArchive};
use crate::config::{Configuration, GenStats};
use crate::evaluator::{EvalResult, Evaluator};
use crate::output::{AnytimePoint, Generated};
use fairsqg_measures::kung_pareto;
use fairsqg_query::{InstanceLattice, Instantiation};
use std::rc::Rc;
use std::time::Instant;

/// Evaluates the entire instance space `I(Q)` in lexicographic order.
///
/// Lexicographic order visits every lattice parent before its children, so
/// incremental verification (`incVerify`) is used throughout. Returns all
/// instances with their results (feasible and infeasible alike) — this is
/// the evaluated universe the indicators are computed against.
pub fn evaluate_universe(ev: &mut Evaluator<'_>) -> Vec<(Instantiation, Rc<EvalResult>)> {
    evaluate_universe_cancellable(ev).0
}

/// Like [`evaluate_universe`], but stops early when the configuration's
/// [`CancelToken`](crate::CancelToken) fires or a verification trips its
/// resource budget; the second component is `true` iff the sweep was cut
/// short.
pub fn evaluate_universe_cancellable(
    ev: &mut Evaluator<'_>,
) -> (Vec<(Instantiation, Rc<EvalResult>)>, bool) {
    let cfg = *ev.config();
    let lat = InstanceLattice::new(cfg.domains);
    let mut out = Vec::new();
    for inst in lat.enumerate() {
        if ev.should_stop() {
            return (out, true);
        }
        let r = ev.verify_with_best_parent(&inst);
        out.push((inst, r));
    }
    (out, ev.should_stop())
}

/// `EnumQGen`: enumerate `I(Q)`, verify every instance, and maintain the
/// ε-Pareto archive with a pairwise (`Update`) comparison.
pub fn enum_qgen(cfg: Configuration<'_>, collect_anytime: bool) -> Generated {
    let start = Instant::now();
    let mut ev = Evaluator::new(cfg);
    let mut archive = EpsParetoArchive::new(cfg.eps);
    let mut anytime = Vec::new();
    let lat = InstanceLattice::new(cfg.domains);
    let mut spawned = 0u64;
    let mut truncated = false;
    for inst in lat.enumerate() {
        if ev.should_stop() {
            truncated = true;
            break;
        }
        spawned += 1;
        let r = ev.verify_with_best_parent(&inst);
        if r.feasible {
            cfg.offer(&mut archive, &inst, &r);
            if collect_anytime {
                anytime.push(AnytimePoint {
                    verified: ev.verified_count(),
                    delta_star: archive
                        .entries()
                        .iter()
                        .map(|e| e.objectives().delta)
                        .fold(0.0, f64::max),
                    f_star: archive
                        .entries()
                        .iter()
                        .map(|e| e.objectives().fcov)
                        .fold(0.0, f64::max),
                });
            }
        }
    }
    truncated |= ev.budget_tripped().is_some();
    let mut stats = GenStats {
        spawned,
        verified: ev.verified_count(),
        cache_hits: ev.cache_hit_count(),
        elapsed: start.elapsed(),
        budget_tripped: ev.budget_tripped(),
        threads_used: 1,
        ..GenStats::default()
    };
    ev.apply_hot_path_stats(&mut stats);
    Generated {
        entries: archive.entries().to_vec(),
        eps: cfg.eps,
        stats,
        anytime,
        truncated,
    }
}

/// `Kungs`: enumerate + verify everything, then compute the **exact** Pareto
/// set of the feasible instances with Kung's algorithm. Scores `I_ε = 1` by
/// construction and serves as the quality reference of Exp-1.
pub fn kungs(cfg: Configuration<'_>) -> Generated {
    let start = Instant::now();
    let mut ev = Evaluator::new(cfg);
    // Inline the universe sweep so a cancellation/deadline token can stop
    // it; the Kung front of a partial universe is only exact for what was
    // seen, which `truncated` signals to the caller.
    let mut universe: Vec<(Instantiation, Rc<EvalResult>)> = Vec::new();
    let mut truncated = false;
    for inst in InstanceLattice::new(cfg.domains).enumerate() {
        if ev.should_stop() {
            truncated = true;
            break;
        }
        let r = ev.verify_with_best_parent(&inst);
        universe.push((inst, r));
    }
    truncated |= ev.budget_tripped().is_some();
    let feasible: Vec<&(Instantiation, Rc<EvalResult>)> =
        universe.iter().filter(|(_, r)| r.feasible).collect();
    let objectives: Vec<_> = feasible.iter().map(|(_, r)| r.objectives).collect();
    let front = kung_pareto(&objectives);
    let entries = front
        .into_iter()
        .map(|i| {
            let (inst, r) = feasible[i];
            ArchiveEntry {
                inst: inst.clone(),
                result: Rc::clone(r),
                bx: r.objectives.boxed(cfg.eps),
            }
        })
        .collect();
    let mut stats = GenStats {
        spawned: universe.len() as u64,
        verified: ev.verified_count(),
        cache_hits: ev.cache_hit_count(),
        elapsed: start.elapsed(),
        budget_tripped: ev.budget_tripped(),
        threads_used: 1,
        ..GenStats::default()
    };
    ev.apply_hot_path_stats(&mut stats);
    Generated {
        entries,
        eps: cfg.eps,
        stats,
        anytime: Vec::new(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::talent_fixture;
    use fairsqg_measures::{eps_indicator, min_eps, Objectives};

    #[test]
    fn universe_is_fully_evaluated() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let mut ev = Evaluator::new(cfg);
        let universe = evaluate_universe(&mut ev);
        assert_eq!(universe.len() as u64, fx.domains().instance_space_size());
        assert!(universe.iter().any(|(_, r)| r.feasible));
    }

    #[test]
    fn kungs_front_is_exact_pareto() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = kungs(cfg);
        assert!(!out.entries.is_empty());
        // Nothing in the front is dominated by any feasible instance.
        let mut ev = Evaluator::new(cfg);
        let feasible: Vec<Objectives> = evaluate_universe(&mut ev)
            .into_iter()
            .filter(|(_, r)| r.feasible)
            .map(|(_, r)| r.objectives)
            .collect();
        for e in &out.entries {
            assert!(feasible.iter().all(|o| !o.dominates(&e.objectives())));
        }
        // The exact Pareto set ε-dominates everything with ε_m = 0.
        assert_eq!(min_eps(&out.objectives(), &feasible), 0.0);
        assert_eq!(eps_indicator(&out.objectives(), &feasible, 0.3), 1.0);
    }

    #[test]
    fn enum_qgen_is_valid_eps_pareto_set() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = enum_qgen(cfg, false);
        assert!(!out.entries.is_empty());
        let mut ev = Evaluator::new(cfg);
        let feasible: Vec<Objectives> = evaluate_universe(&mut ev)
            .into_iter()
            .filter(|(_, r)| r.feasible)
            .map(|(_, r)| r.objectives)
            .collect();
        // Box-shifted ε-coverage of the whole feasible universe.
        let archive = {
            let mut a = EpsParetoArchive::new(cfg.eps);
            for e in &out.entries {
                a.update(&e.inst, &e.result);
            }
            a
        };
        assert!(archive.covers_shifted(&feasible));
        // The archive is much smaller than the universe.
        assert!(out.entries.len() < feasible.len());
    }

    #[test]
    fn output_restriction_bounds_every_answer() {
        let fx = talent_fixture();
        let base = fx.configuration(0.3);
        // Restrict to the even-id half of the output population.
        let pool: Vec<fairsqg_graph::NodeId> = fx
            .graph()
            .nodes_with_label(base.template.output_label())
            .iter()
            .copied()
            .filter(|v| v.index() % 2 == 0)
            .collect();
        let cfg = base.with_output_restriction(&pool);
        let mut ev = Evaluator::new(cfg);
        for (_, r) in evaluate_universe(&mut ev) {
            for m in &r.matches {
                assert!(pool.binary_search(m).is_ok(), "match outside restriction");
            }
        }
        // Restricted generation still returns a valid (possibly empty) set
        // whose members' counts reflect the restricted population.
        let out = enum_qgen(cfg, false);
        for e in &out.entries {
            assert!(e
                .result
                .matches
                .iter()
                .all(|m| pool.binary_search(m).is_ok()));
        }
    }

    #[test]
    fn enum_qgen_anytime_trace_is_monotone() {
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = enum_qgen(cfg, true);
        assert!(!out.anytime.is_empty());
        for w in out.anytime.windows(2) {
            assert!(w[1].verified >= w[0].verified);
        }
        for p in &out.anytime {
            assert!(p.delta_star >= 0.0 && p.f_star >= 0.0);
        }
    }

    #[test]
    fn tripped_budget_truncates_and_is_named_in_stats() {
        use fairsqg_matcher::{BudgetKind, MatchBudget};
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3).with_budget(MatchBudget {
            max_steps: Some(1),
            ..MatchBudget::UNLIMITED
        });
        let out = enum_qgen(cfg, false);
        assert!(out.truncated, "a tripped budget must flag truncation");
        let tripped = out.stats.budget_tripped.expect("budget trip recorded");
        assert_eq!(tripped.kind, BudgetKind::Steps);
        assert_eq!(tripped.limit, 1);
    }

    #[test]
    fn generous_budget_matches_unlimited_run() {
        use fairsqg_matcher::MatchBudget;
        let fx = talent_fixture();
        let unlimited = enum_qgen(fx.configuration(0.3), false);
        let capped = enum_qgen(
            fx.configuration(0.3).with_budget(MatchBudget {
                max_candidates: Some(1_000_000),
                max_steps: Some(100_000_000),
                max_matches: Some(1_000_000),
            }),
            false,
        );
        assert!(!capped.truncated);
        assert!(capped.stats.budget_tripped.is_none());
        assert_eq!(unlimited.entries.len(), capped.entries.len());
    }

    #[test]
    fn enum_archive_boxes_form_an_antichain() {
        // The Update invariant: no archived box dominates another.
        let fx = talent_fixture();
        let cfg = fx.configuration(0.3);
        let out = enum_qgen(cfg, false);
        for (i, a) in out.entries.iter().enumerate() {
            for (j, b) in out.entries.iter().enumerate() {
                if i != j {
                    assert!(!a.bx.dominates(&b.bx), "box-dominated pair in archive");
                    assert_ne!(a.bx, b.bx, "two representatives of one box");
                }
            }
        }
    }
}
