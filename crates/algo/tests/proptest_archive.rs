//! Property-based tests of the ε-Pareto archive (`Update`, Fig. 5) on
//! random insertion sequences: the box antichain, single-factor coverage
//! of every offered point, the Theorem 2 size bound, and rescaling.

use fairsqg_algo::{EpsParetoArchive, EvalResult};
use fairsqg_measures::Objectives;
use fairsqg_query::Instantiation;
use proptest::prelude::*;
use std::rc::Rc;

fn entry(id: u16, delta: f64, fcov: f64) -> (Instantiation, Rc<EvalResult>) {
    (
        Instantiation::new(vec![id]),
        Rc::new(EvalResult {
            matches: Vec::new(),
            counts: Vec::new(),
            objectives: Objectives::new(delta, fcov),
            feasible: true,
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any insertion sequence: (1) archived boxes form an antichain
    /// with unique representatives; (2) every offered objective is
    /// shifted-ε-covered; (3) the per-axis Theorem 2 size bound holds.
    #[test]
    fn archive_invariants(
        offers in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..60),
        eps in 0.05f64..0.9,
    ) {
        let mut archive = EpsParetoArchive::new(eps);
        let mut universe = Vec::new();
        for (i, &(d, f)) in offers.iter().enumerate() {
            let (inst, r) = entry(i as u16, d, f);
            archive.update(&inst, &r);
            universe.push(Objectives::new(d, f));
        }

        // (1) antichain + unique boxes.
        for (i, a) in archive.entries().iter().enumerate() {
            for (j, b) in archive.entries().iter().enumerate() {
                if i != j {
                    prop_assert!(!a.bx.dominates(&b.bx));
                    prop_assert!(a.bx != b.bx);
                }
            }
        }

        // (2) coverage of everything offered.
        prop_assert!(archive.covers_shifted(&universe));

        // (3) size bound: per-axis chain length.
        let dmax = universe.iter().map(|o| o.delta).fold(0.0, f64::max);
        let fmax = universe.iter().map(|o| o.fcov).fold(0.0, f64::max);
        let bound_d = ((1.0 + dmax).ln() / (1.0 + eps).ln()).floor() as usize + 2;
        let bound_f = ((1.0 + fmax).ln() / (1.0 + eps).ln()).floor() as usize + 2;
        prop_assert!(
            archive.len() <= bound_d.min(bound_f),
            "size {} exceeds bound {}",
            archive.len(),
            bound_d.min(bound_f)
        );
    }

    /// The archive result is insensitive to duplicate offers.
    #[test]
    fn idempotent_under_reoffer(
        offers in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..30),
        eps in 0.1f64..0.5,
    ) {
        let mut a1 = EpsParetoArchive::new(eps);
        for (i, &(d, f)) in offers.iter().enumerate() {
            let (inst, r) = entry(i as u16, d, f);
            a1.update(&inst, &r);
        }
        let snapshot: Vec<_> = a1
            .entries()
            .iter()
            .map(|e| (e.objectives().delta.to_bits(), e.objectives().fcov.to_bits()))
            .collect();
        // Re-offer everything; nothing should change.
        for (i, &(d, f)) in offers.iter().enumerate() {
            let (inst, r) = entry(i as u16, d, f);
            a1.update(&inst, &r);
        }
        let after: Vec<_> = a1
            .entries()
            .iter()
            .map(|e| (e.objectives().delta.to_bits(), e.objectives().fcov.to_bits()))
            .collect();
        prop_assert_eq!(snapshot, after);
    }

    /// Rescaling to a larger ε never grows the archive and keeps covering
    /// every offered point within the compounded factor `(1+ε)² − 1`.
    #[test]
    fn rescale_shrinks_and_covers(
        offers in proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..40),
        eps in 0.02f64..0.2,
        grow in 1.5f64..4.0,
    ) {
        let mut archive = EpsParetoArchive::new(eps);
        let mut universe = Vec::new();
        for (i, &(d, f)) in offers.iter().enumerate() {
            let (inst, r) = entry(i as u16, d, f);
            archive.update(&inst, &r);
            universe.push(Objectives::new(d, f));
        }
        let before = archive.len();
        let new_eps = eps * grow;
        archive.rescale(new_eps);
        prop_assert!(archive.len() <= before);
        let compounded = (1.0 + new_eps) * (1.0 + new_eps) - 1.0;
        prop_assert!(archive.covers_shifted_within(&universe, compounded));
    }
}
