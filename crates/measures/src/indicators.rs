//! Quality indicators for Pareto-set approximations (Section V, Exp-1):
//! the ε-indicator `I_ε` and the R-indicator `I_R` of Zitzler et al. [43].

use crate::objectives::Objectives;

/// The minimum `ε_m ≥ 0` for which `set` is an `ε_m`-Pareto set of
/// `universe`: every universe point must be ε-dominated by some set point.
///
/// Returns `f64::INFINITY` when some universe point cannot be ε-dominated
/// for any finite ε (e.g. the set is empty while the universe is not).
pub fn min_eps(set: &[Objectives], universe: &[Objectives]) -> f64 {
    if universe.is_empty() {
        return 0.0;
    }
    if set.is_empty() {
        return f64::INFINITY;
    }
    universe
        .iter()
        .map(|u| {
            set.iter()
                .map(|s| s.needed_eps(u))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

/// Normalized ε-indicator `I_ε = max(0, 1 − ε_m/ε)` (larger is better; the
/// exact Pareto set scores 1).
pub fn eps_indicator(set: &[Objectives], universe: &[Objectives], eps: f64) -> f64 {
    debug_assert!(eps > 0.0);
    let em = min_eps(set, universe);
    if em.is_infinite() {
        return 0.0;
    }
    (1.0 - em / eps).max(0.0)
}

/// R-indicator `I_R = ((1−λ_R)·δ*_norm + λ_R·f*_norm) / 2` where `δ*` / `f*`
/// are the maximum diversity/coverage achieved by the set, normalized into
/// `[0,1]` by `delta_max` (e.g. `|V_uo|` or the universe max) and `f_max`
/// (`C`). A higher `λ_R` rewards sets containing high-coverage queries.
pub fn r_indicator(set: &[Objectives], lambda_r: f64, delta_max: f64, f_max: f64) -> f64 {
    if set.is_empty() {
        return 0.0;
    }
    let d_star = set.iter().map(|o| o.delta).fold(0.0, f64::max);
    let f_star = set.iter().map(|o| o.fcov).fold(0.0, f64::max);
    let dn = if delta_max > 0.0 {
        (d_star / delta_max).min(1.0)
    } else {
        0.0
    };
    let fn_ = if f_max > 0.0 {
        (f_star / f_max).min(1.0)
    } else {
        0.0
    };
    ((1.0 - lambda_r) * dn + lambda_r * fn_) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(d, f)| Objectives::new(d, f)).collect()
    }

    #[test]
    fn exact_pareto_set_has_zero_eps() {
        let universe = pts(&[(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (1.0, 1.0)]);
        let set = pts(&[(3.0, 1.0), (2.0, 2.0), (1.0, 3.0)]);
        assert_eq!(min_eps(&set, &universe), 0.0);
        assert_eq!(eps_indicator(&set, &universe, 0.5), 1.0);
    }

    #[test]
    fn subset_needs_positive_eps() {
        let universe = pts(&[(3.0, 1.0), (2.0, 2.0)]);
        let set = pts(&[(2.0, 2.0)]);
        // To ε-dominate (3,1): (1+ε)·2 ≥ 3 ⇒ ε = 0.5.
        assert!((min_eps(&set, &universe) - 0.5).abs() < 1e-12);
        assert!((eps_indicator(&set, &universe, 1.0) - 0.5).abs() < 1e-12);
        // ε budget smaller than required ⇒ indicator clamps to 0.
        assert_eq!(eps_indicator(&set, &universe, 0.25), 0.0);
    }

    #[test]
    fn empty_set_vs_universe() {
        let universe = pts(&[(1.0, 1.0)]);
        assert_eq!(min_eps(&[], &universe), f64::INFINITY);
        assert_eq!(eps_indicator(&[], &universe, 0.5), 0.0);
        assert_eq!(min_eps(&[], &[]), 0.0);
    }

    #[test]
    fn r_indicator_preferences() {
        let set = pts(&[(8.0, 2.0), (1.0, 10.0)]);
        let (dmax, fmax) = (10.0, 10.0);
        let diversity_pref = r_indicator(&set, 0.1, dmax, fmax);
        let coverage_pref = r_indicator(&set, 0.9, dmax, fmax);
        // δ* = 0.8, f* = 1.0.
        assert!((diversity_pref - (0.9 * 0.8 + 0.1 * 1.0) / 2.0).abs() < 1e-12);
        assert!((coverage_pref - (0.1 * 0.8 + 0.9 * 1.0) / 2.0).abs() < 1e-12);
        assert!(coverage_pref > diversity_pref);
    }

    #[test]
    fn r_indicator_empty_and_degenerate() {
        assert_eq!(r_indicator(&[], 0.5, 10.0, 10.0), 0.0);
        let set = pts(&[(5.0, 5.0)]);
        assert_eq!(r_indicator(&set, 0.5, 0.0, 0.0), 0.0);
    }
}
