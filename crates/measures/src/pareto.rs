//! Pareto-set computation: Kung's divide-and-conquer algorithm [13] and a
//! simple sweep reference.

use crate::objectives::Objectives;

/// Indices of the Pareto-optimal (non-dominated) points, computed with
/// Kung's divide-and-conquer algorithm: sort descending by `δ`, recursively
/// compute the fronts of the two halves, and keep bottom-half points not
/// dominated by the top half. Ties on both objectives keep the first
/// occurrence (the Pareto *set* is unique over distinct objective vectors;
/// duplicates are redundant representatives).
pub fn kung_pareto(points: &[Objectives]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by δ desc, f desc; stable index tiebreak for determinism.
    order.sort_by(|&a, &b| {
        points[b]
            .delta
            .partial_cmp(&points[a].delta)
            .unwrap()
            .then(points[b].fcov.partial_cmp(&points[a].fcov).unwrap())
            .then(a.cmp(&b))
    });
    // Drop exact duplicates (same δ and f): keep the first representative.
    order.dedup_by(|&mut a, &mut b| points[a] == points[b]);
    let mut front = front_rec(points, &order);
    front.sort_unstable();
    front
}

/// Recursive front of a δ-descending slice of indices.
fn front_rec(points: &[Objectives], order: &[usize]) -> Vec<usize> {
    if order.len() <= 1 {
        return order.to_vec();
    }
    let mid = order.len() / 2;
    let top = front_rec(points, &order[..mid]);
    let bottom = front_rec(points, &order[mid..]);
    // A bottom point survives iff no top point dominates it. Since top
    // points all have δ >= any bottom point's δ, dominance reduces to the
    // max f in `top` being >= the bottom point's f (with strictness handled
    // by full dominance check to be safe about ties).
    let mut merged = top.clone();
    for &b in &bottom {
        if top.iter().all(|&t| !points[t].dominates(&points[b])) {
            merged.push(b);
        }
    }
    merged
}

/// Reference O(n log n) sweep: sort by δ desc (f desc tiebreak), keep points
/// whose f strictly exceeds the running maximum, handling δ-ties by only
/// keeping the best-f representative per δ value.
pub fn sweep_pareto(points: &[Objectives]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[b]
            .delta
            .partial_cmp(&points[a].delta)
            .unwrap()
            .then(points[b].fcov.partial_cmp(&points[a].fcov).unwrap())
            .then(a.cmp(&b))
    });
    let mut result = Vec::new();
    let mut best_f = f64::NEG_INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Group of equal δ: only its max-f member can be non-dominated.
        let delta = points[order[i]].delta;
        let leader = order[i]; // max f within the group by sort order
        while i < order.len() && points[order[i]].delta == delta {
            i += 1;
        }
        if points[leader].fcov > best_f {
            result.push(leader);
            best_f = points[leader].fcov;
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(d, f)| Objectives::new(d, f)).collect()
    }

    #[test]
    fn simple_front() {
        let p = pts(&[(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (2.0, 0.5)]);
        // (2,2) dominates (1,1) and (2,0.5); (0.5,3) survives.
        assert_eq!(kung_pareto(&p), vec![1, 2]);
        assert_eq!(sweep_pareto(&p), vec![1, 2]);
    }

    #[test]
    fn all_non_dominated() {
        let p = pts(&[(3.0, 1.0), (2.0, 2.0), (1.0, 3.0)]);
        assert_eq!(kung_pareto(&p), vec![0, 1, 2]);
        assert_eq!(sweep_pareto(&p), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_keep_one_representative() {
        let p = pts(&[(2.0, 2.0), (2.0, 2.0), (1.0, 1.0)]);
        assert_eq!(kung_pareto(&p), vec![0]);
        assert_eq!(sweep_pareto(&p), vec![0]);
    }

    #[test]
    fn delta_ties() {
        let p = pts(&[(2.0, 1.0), (2.0, 3.0), (1.0, 2.0)]);
        // (2,3) dominates (2,1) and (1,2).
        assert_eq!(kung_pareto(&p), vec![1]);
        assert_eq!(sweep_pareto(&p), vec![1]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(kung_pareto(&[]).is_empty());
        let one = pts(&[(1.0, 1.0)]);
        assert_eq!(kung_pareto(&one), vec![0]);
        assert_eq!(sweep_pareto(&one), vec![0]);
    }

    #[test]
    fn kung_matches_bruteforce_on_grid() {
        // Deterministic pseudo-random grid.
        let mut p = Vec::new();
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = ((x >> 33) % 50) as f64;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = ((x >> 33) % 50) as f64;
            p.push(Objectives::new(d, f));
        }
        let brute: Vec<usize> = (0..p.len())
            .filter(|&i| {
                // Non-dominated and first representative of its coordinates.
                p.iter().all(|q| !q.dominates(&p[i])) && p[..i].iter().all(|q| *q != p[i])
            })
            .collect();
        assert_eq!(kung_pareto(&p), brute);
        assert_eq!(sweep_pareto(&p), brute);
    }
}
