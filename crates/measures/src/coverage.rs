//! Group-coverage quality `f(q, P)` and feasibility (Section III-A).

use fairsqg_graph::CoverageSpec;

/// Whether per-group match counts satisfy every constraint:
/// `|q(G) ∩ P_i| ≥ c_i` for all `i` ("feasible instance").
pub fn is_feasible(counts: &[u32], spec: &CoverageSpec) -> bool {
    debug_assert_eq!(counts.len(), spec.len(), "counts/spec group mismatch");
    counts
        .iter()
        .zip(spec.constraints())
        .all(|(&got, &want)| got >= want)
}

/// Coverage quality `f(q, P) = max(0, C − Σ_i | |q(G) ∩ P_i| − c_i |)`.
///
/// The paper penalizes the accumulated error between the desired and the
/// actual coverage of each group; `f ∈ [0, C]`, larger is better, and
/// `f = C` exactly when every group is covered by exactly `c_i` matches.
pub fn coverage_score(counts: &[u32], spec: &CoverageSpec) -> f64 {
    debug_assert_eq!(counts.len(), spec.len(), "counts/spec group mismatch");
    let c_total = spec.total() as i64;
    let error: i64 = counts
        .iter()
        .zip(spec.constraints())
        .map(|(&got, &want)| (got as i64 - want as i64).abs())
        .sum();
    (c_total - error).max(0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_coverage_maximizes_f() {
        let spec = CoverageSpec::new(vec![2, 2]);
        assert_eq!(coverage_score(&[2, 2], &spec), 4.0);
        assert!(is_feasible(&[2, 2], &spec));
    }

    #[test]
    fn overshoot_is_penalized() {
        let spec = CoverageSpec::new(vec![2, 2]);
        // 5 + 2: error |5-2| = 3 ⇒ f = 4 - 3 = 1.
        assert_eq!(coverage_score(&[5, 2], &spec), 1.0);
        assert!(is_feasible(&[5, 2], &spec));
    }

    #[test]
    fn undershoot_is_infeasible_but_scored() {
        let spec = CoverageSpec::new(vec![2, 2]);
        assert!(!is_feasible(&[1, 2], &spec));
        assert_eq!(coverage_score(&[1, 2], &spec), 3.0);
    }

    #[test]
    fn clamped_at_zero() {
        let spec = CoverageSpec::new(vec![1, 1]);
        assert_eq!(coverage_score(&[100, 100], &spec), 0.0);
    }

    #[test]
    fn paper_example_4() {
        // "cover exactly 2 male and 2 female users": C = 4.
        let spec = CoverageSpec::new(vec![2, 2]);
        // q4 finds 3 matches covering (2, 1)... f(q4) = 4 - (0 + 1) = 3.
        assert_eq!(coverage_score(&[2, 1], &spec), 3.0);
        // f = 1 needs error 3, e.g. counts (1, 0).
        assert_eq!(coverage_score(&[1, 0], &spec), 1.0);
    }
}
