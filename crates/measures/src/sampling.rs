//! Seeded sampling helpers for approximate pairwise computations.

use rand::Rng;

/// Samples up to `target` distinct unordered index pairs from `{0..n}`,
/// deterministically for a given RNG state. When `target` covers most of the
/// pair space the full pair set is returned instead (cheaper and exact).
pub fn sample_pairs<R: Rng>(n: usize, target: usize, rng: &mut R) -> Vec<(usize, usize)> {
    let total = n * (n.saturating_sub(1)) / 2;
    if total == 0 {
        return Vec::new();
    }
    if target == 0 || target * 2 >= total {
        let mut all = Vec::with_capacity(total);
        for i in 0..n {
            for j in (i + 1)..n {
                all.push((i, j));
            }
        }
        return all;
    }
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut out = Vec::with_capacity(target);
    // Rejection sampling; target << total so collisions are rare.
    while out.len() < target {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let pair = (i.min(j), i.max(j));
        if seen.insert(pair) {
            out.push(pair);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_pcg::Pcg64Mcg;

    #[test]
    fn small_space_returns_all_pairs() {
        let mut rng = Pcg64Mcg::new(1);
        let pairs = sample_pairs(4, 100, &mut rng);
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn sampling_yields_distinct_valid_pairs() {
        let mut rng = Pcg64Mcg::new(7);
        let pairs = sample_pairs(100, 50, &mut rng);
        assert_eq!(pairs.len(), 50);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 50);
        for &(i, j) in &pairs {
            assert!(i < j && j < 100);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = sample_pairs(100, 30, &mut Pcg64Mcg::new(9));
        let b = sample_pairs(100, 30, &mut Pcg64Mcg::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_nodes() {
        let mut rng = Pcg64Mcg::new(1);
        assert!(sample_pairs(0, 10, &mut rng).is_empty());
        assert!(sample_pairs(1, 10, &mut rng).is_empty());
    }
}
