//! Max-sum diversity of a match set (Section III-A).
//!
//! `δ(q, G) = (1-λ) Σ_{v∈q(G)} r(u_o, v) + (2λ/(|V_uo|-1)) Σ_{v<v'} d(v, v')`
//!
//! with relevance `r ∈ [0,1]` and pairwise difference `d ∈ [0,1]`. The
//! pairwise term is normalized by `(|V_uo|-1)/2` so `δ ∈ [0, |V_uo|]`.

use crate::sampling::sample_pairs;
use fairsqg_graph::{AttrValue, Graph, LabelId, NodeId};
use rand_pcg::Pcg64Mcg;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Relevance function `r(u_o, v)` choices.
///
/// The paper suggests entity-linkage scores or social impact; we provide
/// structural stand-ins that only depend on the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Relevance {
    /// In-degree of the match normalized by the maximum in-degree over
    /// `V_uo` ("impact of v in social networks").
    InDegreeNormalized,
    /// A constant relevance for every match.
    Uniform(f64),
}

/// Which diversification objective the measure computes.
///
/// The paper's `δ(q, G)` is **max-sum** (Section III-A); max-min is the
/// alternative studied in the diversification literature it cites [22, 34].
/// Note that max-min is *not* monotone under match-set growth, so the
/// pruning guarantees of Lemma 2 only hold for [`MaxSum`]
/// (generation still works with max-min, but as a heuristic).
///
/// [`MaxSum`]: DiversityObjective::MaxSum
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiversityObjective {
    /// `(1-λ) Σ r(u_o,v) + (2λ/(|V_uo|-1)) Σ_{v<v'} d(v,v')` (the paper).
    #[default]
    MaxSum,
    /// `(1-λ) Σ r(u_o,v) + λ |q(G)| · min_{v<v'} d(v,v')`.
    MaxMin,
}

/// Configuration of the diversity measure.
#[derive(Debug, Clone, Copy)]
pub struct DiversityConfig {
    /// Trade-off `λ ∈ [0, 1]` between relevance and pairwise diversity.
    pub lambda: f64,
    /// Max-sum (paper default) or max-min dispersion.
    pub objective: DiversityObjective,
    /// Relevance function.
    pub relevance: Relevance,
    /// When the match set has more than `pair_cap` nodes, estimate the
    /// pairwise term from a seeded sample of `pair_cap²/2` pairs instead of
    /// all `O(|q(G)|²)` pairs. `0` disables sampling (always exact).
    pub pair_cap: usize,
    /// Seed for pair sampling (determinism).
    pub seed: u64,
    /// Memoize per-node relevance and pairwise distances across `score`
    /// calls (default). Lemma 2's monotone refinement means nested match
    /// sets re-score the same pairs over and over; the cache turns those
    /// repeats into lookups. Cached values are the exact `f64`s the
    /// uncached path computes, so scores are bit-identical either way.
    /// Disable for the un-cached reference path in A/B benchmarks.
    pub cache_distances: bool,
}

impl Default for DiversityConfig {
    fn default() -> Self {
        Self {
            lambda: 0.5,
            objective: DiversityObjective::MaxSum,
            relevance: Relevance::InDegreeNormalized,
            pair_cap: 512,
            seed: 0x5eed,
            cache_distances: true,
        }
    }
}

/// Hit/miss counters of a [`DiversityMeasure`]'s memoization caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasureCacheStats {
    /// Pairwise distances served from the cache.
    pub distance_hits: u64,
    /// Pairwise distances computed from the attribute tuples (including
    /// non-cacheable pairs involving nodes outside the output population).
    pub distance_misses: u64,
}

/// A memoized seeded pair sample: all samples for one match-set size,
/// shared between the cache and `score` callers. `Arc` (not `Rc`) so the
/// cross-thread [`SharedDiversityCache`] can hand the same sample to every
/// worker and every successive service job.
type PairSample = Arc<Vec<(usize, usize)>>;

/// Output populations up to this size get a dense triangular `f64` cache
/// (lazily allocated, ≤ ~4 MiB); larger populations fall back to a hash
/// map so memory stays proportional to the pairs actually scored.
const DENSE_DISTANCE_MAX_POP: usize = 1024;

/// Cross-thread relevance/distance memoization: a lock-free
/// "compute once" table of `f64` bit patterns, shared by the measures of
/// parallel workers so one worker's cold computation becomes every
/// worker's hit. Races are benign — `distance`/`relevance` are
/// deterministic, so concurrent writers of a slot store identical bits.
/// `NaN` bits mark empty slots (both quantities are always finite).
#[derive(Debug)]
pub struct SharedDiversityCache {
    /// `|V_uo|`.
    population: usize,
    /// Triangular pairwise-distance table over population ranks; empty
    /// when the population exceeds the dense cap (workers then fall back
    /// to their private caches).
    distances: Vec<AtomicU64>,
    /// Per-node relevance, indexed by node id.
    relevances: Vec<AtomicU64>,
    /// The relevance function the cached values were computed under.
    /// Cached relevances are only valid for measures configured with the
    /// same function; [`DiversityMeasure::attach_shared_cache`] asserts it.
    relevance: Relevance,
    /// Pair-sampling parameters the memoized samples were drawn under
    /// (`(pair_cap, seed)`); guarded like `relevance`.
    pair_cap: usize,
    seed: u64,
    /// Cross-thread seeded pair-sample memo keyed by match-set size. The
    /// sample is a pure function of `(seed, n)`, so sharing it is a pure
    /// cost optimization — every consumer would compute identical pairs.
    pair_samples: Mutex<HashMap<usize, PairSample>>,
}

impl SharedDiversityCache {
    /// Builds an empty shared cache for matches of `output_label`, assuming
    /// the default relevance function and pair-sampling parameters.
    pub fn new(graph: &Graph, output_label: LabelId) -> Self {
        Self::for_config(graph, output_label, &DiversityConfig::default())
    }

    /// Builds an empty shared cache for matches of `output_label` whose
    /// cached values follow `config`'s relevance function and pair-sampling
    /// parameters. `lambda`, the objective, and `cache_distances` do not
    /// affect cached quantities, so caches are shareable across them.
    pub fn for_config(graph: &Graph, output_label: LabelId, config: &DiversityConfig) -> Self {
        let pop = graph.nodes_with_label(output_label);
        let pairs = if pop.len() <= DENSE_DISTANCE_MAX_POP {
            pop.len() * (pop.len() - 1) / 2
        } else {
            0
        };
        let nan = f64::NAN.to_bits();
        Self {
            population: pop.len(),
            distances: (0..pairs).map(|_| AtomicU64::new(nan)).collect(),
            relevances: (0..graph.node_count())
                .map(|_| AtomicU64::new(nan))
                .collect(),
            relevance: config.relevance,
            pair_cap: config.pair_cap,
            seed: config.seed,
            pair_samples: Mutex::new(HashMap::new()),
        }
    }

    /// `|V_uo|` the cache was built for.
    #[inline]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Approximate resident size in bytes: the atomic tables plus the
    /// memoized pair samples. Used by the service's warm-state pool to
    /// enforce its cross-graph byte budget.
    pub fn approx_bytes(&self) -> usize {
        let samples: usize = self
            .pair_samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(|s| s.len() * std::mem::size_of::<(usize, usize)>())
            .sum();
        (self.distances.len() + self.relevances.len()) * std::mem::size_of::<AtomicU64>() + samples
    }

    /// The memoized pair sample for match-set size `n`, computing and
    /// publishing it on first request.
    fn pair_sample(&self, n: usize) -> PairSample {
        let mut samples = self
            .pair_samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(samples.entry(n).or_insert_with(|| {
            let sample_target = self.pair_cap * self.pair_cap / 2;
            let mut rng = Pcg64Mcg::new(self.seed as u128 | 1);
            Arc::new(sample_pairs(n, sample_target, &mut rng))
        }))
    }

    #[inline]
    fn get(slot: &AtomicU64) -> Option<f64> {
        let v = f64::from_bits(slot.load(Ordering::Relaxed));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    #[inline]
    fn set(slot: &AtomicU64, value: f64) {
        slot.store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Precomputed diversity evaluator for one graph + output label.
///
/// When [`DiversityConfig::cache_distances`] is set (default), per-node
/// relevance and pairwise distances are memoized behind interior
/// mutability: `score` keeps its `&self` signature, and each thread owns
/// its own measure (the cells are not `Sync`).
#[derive(Debug, Clone)]
pub struct DiversityMeasure<'g> {
    graph: &'g Graph,
    config: DiversityConfig,
    /// `|V_uo|`: population of the output label.
    population: usize,
    /// Max in-degree over `V_uo` (for relevance normalization).
    max_in_degree: usize,
    /// Rank of each node within the sorted output population
    /// (`u32::MAX` = not in `V_uo`); keys the triangular distance cache.
    node_rank: Vec<u32>,
    /// Memoized `r(u_o, v)` per node id; `NaN` = not yet computed.
    /// Lazily sized on first use.
    relevance_cache: RefCell<Vec<f64>>,
    /// Dense triangular distance cache over population ranks (`NaN` =
    /// unset), used when `|V_uo| ≤ DENSE_DISTANCE_MAX_POP`. Lazily sized
    /// on first use.
    dense_distances: RefCell<Vec<f64>>,
    use_dense: bool,
    /// Fallback distance cache for large populations.
    sparse_distances: RefCell<HashMap<(NodeId, NodeId), f64>>,
    /// Memoized seeded pair samples keyed by match-set size (the sample
    /// is a pure function of the seed and `n`; see [`Self::sampled_pairs`]).
    pair_sample_cache: RefCell<HashMap<usize, PairSample>>,
    /// Optional cross-thread memoization table consulted before the
    /// private caches (see [`SharedDiversityCache`]).
    shared: Option<Arc<SharedDiversityCache>>,
    distance_hits: Cell<u64>,
    distance_misses: Cell<u64>,
}

impl<'g> DiversityMeasure<'g> {
    /// Creates a measure for matches of `output_label` in `graph`.
    pub fn new(graph: &'g Graph, output_label: LabelId, config: DiversityConfig) -> Self {
        let pop = graph.nodes_with_label(output_label);
        let max_in_degree = pop.iter().map(|&v| graph.in_degree(v)).max().unwrap_or(0);
        let mut node_rank = Vec::new();
        if config.cache_distances {
            node_rank = vec![u32::MAX; graph.node_count()];
            for (i, &v) in pop.iter().enumerate() {
                node_rank[v.index()] = i as u32;
            }
        }
        Self {
            graph,
            config,
            population: pop.len(),
            max_in_degree,
            node_rank,
            relevance_cache: RefCell::new(Vec::new()),
            dense_distances: RefCell::new(Vec::new()),
            use_dense: pop.len() <= DENSE_DISTANCE_MAX_POP,
            sparse_distances: RefCell::new(HashMap::new()),
            pair_sample_cache: RefCell::new(HashMap::new()),
            shared: None,
            distance_hits: Cell::new(0),
            distance_misses: Cell::new(0),
        }
    }

    /// Attaches a cross-thread memoization table built for the same graph
    /// and output label. Values already published by other measures become
    /// hits here; values this measure computes become hits everywhere
    /// else. No effect when distance caching is disabled.
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedDiversityCache>) {
        debug_assert_eq!(
            cache.population, self.population,
            "shared cache built for a different output population"
        );
        debug_assert_eq!(
            cache.relevance, self.config.relevance,
            "shared cache built under a different relevance function"
        );
        debug_assert_eq!(
            (cache.pair_cap, cache.seed),
            (self.config.pair_cap, self.config.seed),
            "shared cache built under different pair-sampling parameters"
        );
        self.shared = Some(cache);
    }

    /// Hit/miss counters of the memoization caches so far.
    pub fn cache_stats(&self) -> MeasureCacheStats {
        MeasureCacheStats {
            distance_hits: self.distance_hits.get(),
            distance_misses: self.distance_misses.get(),
        }
    }

    /// Index of the (rank-ordered) pair `ra < rb` in the dense triangular
    /// cache.
    #[inline]
    fn tri_index(&self, ra: usize, rb: usize) -> usize {
        debug_assert!(ra < rb && rb < self.population);
        ra * (2 * self.population - ra - 1) / 2 + (rb - ra - 1)
    }

    /// `|V_uo|`.
    #[inline]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Upper bound of `δ`: `|V_uo|` (used to normalize indicators).
    #[inline]
    pub fn delta_max(&self) -> f64 {
        self.population as f64
    }

    /// Relevance `r(u_o, v) ∈ [0, 1]` (memoized per node when caching is
    /// enabled).
    pub fn relevance(&self, v: NodeId) -> f64 {
        if !self.config.cache_distances {
            return self.relevance_uncached(v);
        }
        if let Some(shared) = &self.shared {
            let slot = &shared.relevances[v.index()];
            if let Some(r) = SharedDiversityCache::get(slot) {
                return r;
            }
            let r = self.relevance_uncached(v);
            SharedDiversityCache::set(slot, r);
            return r;
        }
        let mut cache = self.relevance_cache.borrow_mut();
        if cache.is_empty() {
            cache.resize(self.graph.node_count(), f64::NAN);
        }
        let cached = cache[v.index()];
        if !cached.is_nan() {
            return cached;
        }
        let r = self.relevance_uncached(v);
        cache[v.index()] = r;
        r
    }

    fn relevance_uncached(&self, v: NodeId) -> f64 {
        match self.config.relevance {
            Relevance::InDegreeNormalized => {
                if self.max_in_degree == 0 {
                    0.0
                } else {
                    self.graph.in_degree(v) as f64 / self.max_in_degree as f64
                }
            }
            Relevance::Uniform(r) => r.clamp(0.0, 1.0),
        }
    }

    /// Normalized tuple difference `d(v, v') ∈ [0, 1]`: averaged
    /// per-attribute distance over the union of the two tuples' attributes
    /// (integers: absolute difference over the attribute's global range;
    /// strings: 0/1; attribute present on one side only: 1).
    ///
    /// Memoized per unordered population pair when caching is enabled;
    /// the cached value is the exact `f64` the computation produces.
    pub fn distance(&self, v: NodeId, w: NodeId) -> f64 {
        if !self.config.cache_distances || v == w {
            return self.distance_uncached(v, w);
        }
        let (a, b) = if v < w { (v, w) } else { (w, v) };
        let (ra, rb) = (self.node_rank[a.index()], self.node_rank[b.index()]);
        if ra == u32::MAX || rb == u32::MAX {
            // A coordinate outside the output population (multi-output
            // tuples may bind non-population nodes): not cacheable.
            self.distance_misses.set(self.distance_misses.get() + 1);
            return self.distance_uncached(a, b);
        }
        if let Some(shared) = &self.shared {
            if !shared.distances.is_empty() {
                let slot = &shared.distances[self.tri_index(ra as usize, rb as usize)];
                if let Some(d) = SharedDiversityCache::get(slot) {
                    self.distance_hits.set(self.distance_hits.get() + 1);
                    return d;
                }
                let d = self.distance_uncached(a, b);
                SharedDiversityCache::set(slot, d);
                self.distance_misses.set(self.distance_misses.get() + 1);
                return d;
            }
            // Population exceeds the dense cap: the shared table holds no
            // pair slots, so fall through to the private caches.
        }
        if self.use_dense {
            let idx = self.tri_index(ra as usize, rb as usize);
            let cached = self.dense_distances.borrow().get(idx).copied();
            if let Some(d) = cached {
                if !d.is_nan() {
                    self.distance_hits.set(self.distance_hits.get() + 1);
                    return d;
                }
            }
            let d = self.distance_uncached(a, b);
            let mut dense = self.dense_distances.borrow_mut();
            if dense.is_empty() {
                dense.resize(self.population * (self.population - 1) / 2, f64::NAN);
            }
            dense[idx] = d;
            self.distance_misses.set(self.distance_misses.get() + 1);
            d
        } else {
            if let Some(&d) = self.sparse_distances.borrow().get(&(a, b)) {
                self.distance_hits.set(self.distance_hits.get() + 1);
                return d;
            }
            let d = self.distance_uncached(a, b);
            self.sparse_distances.borrow_mut().insert((a, b), d);
            self.distance_misses.set(self.distance_misses.get() + 1);
            d
        }
    }

    fn distance_uncached(&self, v: NodeId, w: NodeId) -> f64 {
        let tv = self.graph.tuple(v);
        let tw = self.graph.tuple(w);
        if tv.is_empty() && tw.is_empty() {
            return 0.0;
        }
        let (mut i, mut j) = (0usize, 0usize);
        let mut total = 0.0f64;
        let mut count = 0usize;
        while i < tv.len() || j < tw.len() {
            count += 1;
            match (tv.get(i), tw.get(j)) {
                (Some(&e1), Some(&e2)) => {
                    let (a1, a2) = (e1.attr(), e2.attr());
                    if a1 == a2 {
                        total += self.value_distance(a1, e1.value(), e2.value());
                        i += 1;
                        j += 1;
                    } else if a1 < a2 {
                        total += 1.0;
                        i += 1;
                    } else {
                        total += 1.0;
                        j += 1;
                    }
                }
                (Some(_), None) => {
                    total += 1.0;
                    i += 1;
                }
                (None, Some(_)) => {
                    total += 1.0;
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        total / count as f64
    }

    fn value_distance(&self, attr: fairsqg_graph::AttrId, a: AttrValue, b: AttrValue) -> f64 {
        match (a, b) {
            (AttrValue::Int(x), AttrValue::Int(y)) => match self.graph.domains().int_range(attr) {
                Some((lo, hi)) if hi > lo => ((x - y).unsigned_abs() as f64) / ((hi - lo) as f64),
                _ => {
                    if x == y {
                        0.0
                    } else {
                        1.0
                    }
                }
            },
            (a, b) => {
                if a == b {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Diversity `δ(q, G)` of a match set under the configured objective.
    pub fn score(&self, matches: &[NodeId]) -> f64 {
        match self.config.objective {
            DiversityObjective::MaxSum => self.score_max_sum(matches),
            DiversityObjective::MaxMin => self.score_max_min(matches),
        }
    }

    /// The seeded pair sample for a match set of size `n`. The sample is
    /// a pure function of `(seed, n)` — rejection sampling from a freshly
    /// seeded RNG — so when caching is on it is memoized per `n`: sibling
    /// instances with equal-sized match sets reuse it instead of redoing
    /// tens of thousands of RNG draws and hash-set inserts per score.
    fn sampled_pairs(&self, n: usize) -> PairSample {
        let sample_target = self.config.pair_cap * self.config.pair_cap / 2;
        if !self.config.cache_distances {
            let mut rng = Pcg64Mcg::new(self.config.seed as u128 | 1);
            return Arc::new(sample_pairs(n, sample_target, &mut rng));
        }
        let mut cache = self.pair_sample_cache.borrow_mut();
        Arc::clone(cache.entry(n).or_insert_with(|| {
            // Consult (and feed) the cross-thread memo first so sibling
            // workers and successive jobs on the same graph share one
            // sample per size instead of redrawing it.
            if let Some(shared) = &self.shared {
                shared.pair_sample(n)
            } else {
                let mut rng = Pcg64Mcg::new(self.config.seed as u128 | 1);
                Arc::new(sample_pairs(n, sample_target, &mut rng))
            }
        }))
    }

    /// Max-sum diversity (the paper's `δ`).
    pub fn score_max_sum(&self, matches: &[NodeId]) -> f64 {
        if matches.is_empty() {
            return 0.0;
        }
        let lambda = self.config.lambda;
        let relevance_sum: f64 = matches.iter().map(|&v| self.relevance(v)).sum();

        let n = matches.len();
        let total_pairs = n * (n - 1) / 2;
        let pair_sum: f64 = if total_pairs == 0 {
            0.0
        } else if self.config.pair_cap > 0 && n > self.config.pair_cap {
            // Seeded sample of pairs; scale the mean back to the full count.
            let sampled = self.sampled_pairs(n);
            let mean: f64 = sampled
                .iter()
                .map(|&(i, j)| self.distance(matches[i], matches[j]))
                .sum::<f64>()
                / sampled.len() as f64;
            mean * total_pairs as f64
        } else {
            let mut sum = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    sum += self.distance(matches[i], matches[j]);
                }
            }
            sum
        };

        let norm = if self.population > 1 {
            2.0 * lambda / (self.population as f64 - 1.0)
        } else {
            0.0
        };
        (1.0 - lambda) * relevance_sum + norm * pair_sum
    }

    /// Max-min dispersion variant:
    /// `(1-λ) Σ r + λ |q(G)| · min_{v<v'} d(v,v')`. Singleton match sets
    /// have no pairs; their dispersion term is 0.
    pub fn score_max_min(&self, matches: &[NodeId]) -> f64 {
        if matches.is_empty() {
            return 0.0;
        }
        let lambda = self.config.lambda;
        let relevance_sum: f64 = matches.iter().map(|&v| self.relevance(v)).sum();
        let n = matches.len();
        let min_pair = if n < 2 {
            0.0
        } else if self.config.pair_cap > 0 && n > self.config.pair_cap {
            let sample_target = self.config.pair_cap * self.config.pair_cap / 2;
            let mut rng = Pcg64Mcg::new(self.config.seed as u128 | 1);
            sample_pairs(n, sample_target, &mut rng)
                .iter()
                .map(|&(i, j)| self.distance(matches[i], matches[j]))
                .fold(f64::INFINITY, f64::min)
        } else {
            let mut min = f64::INFINITY;
            for i in 0..n {
                for j in (i + 1)..n {
                    min = min.min(self.distance(matches[i], matches[j]));
                }
            }
            min
        };
        let min_pair = if min_pair.is_finite() { min_pair } else { 0.0 };
        (1.0 - lambda) * relevance_sum + lambda * n as f64 * min_pair
    }

    /// Distance between two output *tuples* (multi-output extension): the
    /// mean of the coordinate-wise node distances. Tuples must have equal
    /// arity.
    pub fn tuple_distance(&self, a: &[NodeId], b: &[NodeId]) -> f64 {
        assert_eq!(a.len(), b.len(), "tuple arity mismatch");
        if a.is_empty() {
            return 0.0;
        }
        let sum: f64 = a.iter().zip(b).map(|(&x, &y)| self.distance(x, y)).sum();
        sum / a.len() as f64
    }

    /// Max-sum diversity over output tuples (multi-output extension): the
    /// relevance of a tuple is the mean of its coordinates' relevances, and
    /// the pairwise term uses [`tuple_distance`](Self::tuple_distance),
    /// normalized with the same `2λ/(|V_uo|-1)` constant as the
    /// single-output measure.
    pub fn score_tuples(&self, tuples: &[Vec<NodeId>]) -> f64 {
        if tuples.is_empty() {
            return 0.0;
        }
        let lambda = self.config.lambda;
        let relevance_sum: f64 = tuples
            .iter()
            .map(|t| {
                if t.is_empty() {
                    0.0
                } else {
                    t.iter().map(|&v| self.relevance(v)).sum::<f64>() / t.len() as f64
                }
            })
            .sum();
        let n = tuples.len();
        let mut pair_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                pair_sum += self.tuple_distance(&tuples[i], &tuples[j]);
            }
        }
        let norm = if self.population > 1 {
            2.0 * lambda / (self.population as f64 - 1.0)
        } else {
            0.0
        };
        (1.0 - lambda) * relevance_sum + norm * pair_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsqg_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        let m1 = b.add_named_node("movie", &[("year", AttrValue::Int(2000))]);
        let m2 = b.add_named_node("movie", &[("year", AttrValue::Int(2010))]);
        let _m3 = b.add_named_node("movie", &[("year", AttrValue::Int(2020))]);
        let d = b.add_named_node("director", &[]);
        b.add_named_edge(d, m1, "directed");
        b.add_named_edge(d, m2, "directed");
        b.finish()
    }

    fn measure(g: &Graph, lambda: f64) -> DiversityMeasure<'_> {
        let movie = g.schema().find_node_label("movie").unwrap();
        DiversityMeasure::new(
            g,
            movie,
            DiversityConfig {
                lambda,
                ..DiversityConfig::default()
            },
        )
    }

    #[test]
    fn empty_match_set_scores_zero() {
        let g = graph();
        assert_eq!(measure(&g, 0.5).score(&[]), 0.0);
    }

    #[test]
    fn pure_relevance_lambda_zero() {
        let g = graph();
        let m = measure(&g, 0.0);
        // m1, m2 have in-degree 1 (max), m3 has 0.
        let s = m.score(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pure_diversity_lambda_one() {
        let g = graph();
        let m = measure(&g, 1.0);
        // d(m1,m3) over year range [2000,2020]: |2000-2020|/20 = 1.
        assert!((m.distance(NodeId(0), NodeId(2)) - 1.0).abs() < 1e-12);
        assert!((m.distance(NodeId(0), NodeId(1)) - 0.5).abs() < 1e-12);
        // δ = (2·1/(3-1)) · Σ pairs = 1.0 · (0.5 + 1.0 + 0.5) = 2.0
        let s = m.score(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_handles_missing_attributes() {
        let g = graph();
        let m = measure(&g, 1.0);
        // director has no attrs; movie has one ⇒ union size 1, mismatch 1.
        assert!((m.distance(NodeId(0), NodeId(3)) - 1.0).abs() < 1e-12);
        // Two empty tuples.
        let mut b = GraphBuilder::new();
        let a = b.add_named_node("x", &[]);
        let c = b.add_named_node("x", &[]);
        let g2 = b.finish();
        let x = g2.schema().find_node_label("x").unwrap();
        let m2 = DiversityMeasure::new(&g2, x, DiversityConfig::default());
        assert_eq!(m2.distance(a, c), 0.0);
    }

    #[test]
    fn monotone_under_superset_for_pure_diversity() {
        let g = graph();
        let m = measure(&g, 1.0);
        let small = m.score(&[NodeId(0), NodeId(1)]);
        let large = m.score(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(
            large > small,
            "adding matches cannot reduce max-sum diversity"
        );
    }

    #[test]
    fn sampling_approximates_exact() {
        // A larger synthetic set to exercise the sampling path.
        let mut b = GraphBuilder::new();
        for i in 0..60 {
            b.add_named_node("movie", &[("year", AttrValue::Int(1960 + i))]);
        }
        let g = b.finish();
        let movie = g.schema().find_node_label("movie").unwrap();
        let matches: Vec<NodeId> = g.nodes().collect();
        let exact = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 1.0,
                pair_cap: 0,
                ..DiversityConfig::default()
            },
        )
        .score(&matches);
        let approx = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 1.0,
                pair_cap: 30,
                ..DiversityConfig::default()
            },
        )
        .score(&matches);
        let rel_err = (exact - approx).abs() / exact;
        assert!(rel_err < 0.15, "rel err {rel_err} too large");
    }

    #[test]
    fn tuple_scoring_degenerates_to_node_scoring_for_arity_one() {
        let g = graph();
        let m = measure(&g, 1.0);
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2)];
        let tuples: Vec<Vec<NodeId>> = nodes.iter().map(|&v| vec![v]).collect();
        let a = m.score(&nodes);
        let b = m.score_tuples(&tuples);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn tuple_distance_is_the_coordinate_mean() {
        let g = graph();
        let m = measure(&g, 1.0);
        let d01 = m.distance(NodeId(0), NodeId(1));
        let d02 = m.distance(NodeId(0), NodeId(2));
        let td = m.tuple_distance(&[NodeId(0), NodeId(0)], &[NodeId(1), NodeId(2)]);
        assert!((td - (d01 + d02) / 2.0).abs() < 1e-12);
        assert_eq!(m.score_tuples(&[]), 0.0);
    }

    #[test]
    fn max_min_objective() {
        let g = graph();
        let movie = g.schema().find_node_label("movie").unwrap();
        let m = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 1.0,
                objective: DiversityObjective::MaxMin,
                pair_cap: 0,
                ..DiversityConfig::default()
            },
        );
        // min pairwise distance among {m1,m2,m3} is 0.5 ⇒ δ = 3·0.5 = 1.5.
        let s = m.score(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!((s - 1.5).abs() < 1e-12);
        // Singleton: no dispersion.
        assert_eq!(m.score(&[NodeId(0)]), 0.0);
        // Max-min is NOT superset-monotone: a near-duplicate pair hurts.
        let two = m.score(&[NodeId(0), NodeId(2)]); // distance 1.0 ⇒ 2.0
        assert!(two > s);
    }

    #[test]
    fn cached_scores_are_bit_identical_to_uncached_on_nested_sets() {
        // Nested match sets mimic a refinement chain (Lemma 2): the cache
        // must return exactly the same f64 as the cold computation.
        let mut b = GraphBuilder::new();
        for i in 0..40i64 {
            b.add_named_node(
                "movie",
                &[
                    ("year", AttrValue::Int(1980 + i)),
                    ("votes", AttrValue::Int(i * i % 23)),
                ],
            );
        }
        let g = b.finish();
        let movie = g.schema().find_node_label("movie").unwrap();
        let cached = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 0.7,
                pair_cap: 0,
                ..DiversityConfig::default()
            },
        );
        let uncached = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 0.7,
                pair_cap: 0,
                cache_distances: false,
                ..DiversityConfig::default()
            },
        );
        let all: Vec<NodeId> = g.nodes().collect();
        for len in (1..=all.len()).rev() {
            let set = &all[..len];
            let a = cached.score(set);
            let b = uncached.score(set);
            assert_eq!(a.to_bits(), b.to_bits(), "score differs at len {len}");
        }
        let stats = cached.cache_stats();
        // The chain re-scores every surviving pair: all but the first full
        // scoring must hit.
        assert_eq!(stats.distance_misses, (40 * 39) / 2);
        assert!(stats.distance_hits > stats.distance_misses);
        assert_eq!(uncached.cache_stats(), MeasureCacheStats::default());
    }

    #[test]
    fn sparse_cache_agrees_beyond_dense_cap() {
        // Force the sparse path by shrinking over the dense cap is not
        // possible via config, so exercise it directly with a population
        // larger than DENSE_DISTANCE_MAX_POP.
        let mut b = GraphBuilder::new();
        for i in 0..(DENSE_DISTANCE_MAX_POP as i64 + 8) {
            b.add_named_node("p", &[("k", AttrValue::Int(i % 97))]);
        }
        let g = b.finish();
        let p = g.schema().find_node_label("p").unwrap();
        let m = DiversityMeasure::new(&g, p, DiversityConfig::default());
        let d1 = m.distance(NodeId(3), NodeId(900));
        let d2 = m.distance(NodeId(900), NodeId(3));
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(m.cache_stats().distance_hits, 1);
        assert_eq!(m.cache_stats().distance_misses, 1);
    }

    #[test]
    fn uniform_relevance() {
        let g = graph();
        let movie = g.schema().find_node_label("movie").unwrap();
        let m = DiversityMeasure::new(
            &g,
            movie,
            DiversityConfig {
                lambda: 0.0,
                relevance: Relevance::Uniform(0.25),
                ..DiversityConfig::default()
            },
        );
        let s = m.score(&[NodeId(0), NodeId(1)]);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_is_bit_identical_to_private() {
        let g = graph();
        let movie = g.schema().find_node_label("movie").unwrap();
        let shared = Arc::new(SharedDiversityCache::new(&g, movie));
        let mut with_shared = measure(&g, 0.5);
        with_shared.attach_shared_cache(Arc::clone(&shared));
        let private = measure(&g, 0.5);
        let all = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(
            with_shared.score(&all).to_bits(),
            private.score(&all).to_bits()
        );
        for &v in &all {
            for &w in &all {
                assert_eq!(
                    with_shared.distance(v, w).to_bits(),
                    private.distance(v, w).to_bits()
                );
            }
            assert_eq!(
                with_shared.relevance(v).to_bits(),
                private.relevance(v).to_bits()
            );
        }
    }

    #[test]
    fn shared_cache_publishes_across_measures() {
        let g = graph();
        let movie = g.schema().find_node_label("movie").unwrap();
        let shared = Arc::new(SharedDiversityCache::new(&g, movie));
        let mut first = measure(&g, 1.0);
        first.attach_shared_cache(Arc::clone(&shared));
        let d = first.distance(NodeId(0), NodeId(2));
        assert_eq!(first.cache_stats().distance_misses, 1);
        // A fresh measure on the same table sees the published value
        // without ever computing it.
        let mut second = measure(&g, 1.0);
        second.attach_shared_cache(shared);
        assert_eq!(second.distance(NodeId(0), NodeId(2)).to_bits(), d.to_bits());
        assert_eq!(second.cache_stats().distance_hits, 1);
        assert_eq!(second.cache_stats().distance_misses, 0);
    }
}
