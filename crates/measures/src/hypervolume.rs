//! Hypervolume indicator for bi-objective fronts.
//!
//! The hypervolume (S-metric) of a set of maximization points w.r.t. a
//! reference point `r` is the area of the region dominated by the set and
//! dominating `r`. It is the standard third indicator alongside the ε- and
//! R-indicators of Zitzler et al. [43] and is used by the ablation
//! experiments to compare archive qualities with a single scalar.

use crate::objectives::Objectives;

/// Hypervolume of `set` against reference `(ref_delta, ref_fcov)` (usually
/// the origin). Points not dominating the reference contribute nothing.
pub fn hypervolume(set: &[Objectives], ref_delta: f64, ref_fcov: f64) -> f64 {
    // Keep only points strictly better than the reference on both axes.
    let mut pts: Vec<(f64, f64)> = set
        .iter()
        .filter(|o| o.delta > ref_delta && o.fcov > ref_fcov)
        .map(|o| (o.delta, o.fcov))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by δ descending; sweep adding rectangular slabs for each point
    // that improves the running best f.
    pts.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(b.1.partial_cmp(&a.1).unwrap())
    });
    let mut volume = 0.0;
    let mut best_f = ref_fcov;
    for &(d, f) in &pts {
        if f > best_f {
            volume += (d - ref_delta) * (f - best_f);
            best_f = f;
        }
    }
    volume
}

/// Normalized hypervolume in `[0, 1]`: the fraction of the
/// `[0, delta_max] × [0, f_max]` box the set dominates.
pub fn hypervolume_normalized(set: &[Objectives], delta_max: f64, f_max: f64) -> f64 {
    if delta_max <= 0.0 || f_max <= 0.0 {
        return 0.0;
    }
    (hypervolume(set, 0.0, 0.0) / (delta_max * f_max)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(d, f)| Objectives::new(d, f)).collect()
    }

    #[test]
    fn single_point_is_a_rectangle() {
        let hv = hypervolume(&pts(&[(2.0, 3.0)]), 0.0, 0.0);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let a = hypervolume(&pts(&[(2.0, 3.0)]), 0.0, 0.0);
        let b = hypervolume(&pts(&[(2.0, 3.0), (1.0, 1.0)]), 0.0, 0.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn staircase_union() {
        // (3,1) and (1,3): union area = 3*1 + 1*(3-1) = 5.
        let hv = hypervolume(&pts(&[(3.0, 1.0), (1.0, 3.0)]), 0.0, 0.0);
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reference_point_shifts() {
        let hv = hypervolume(&pts(&[(2.0, 3.0)]), 1.0, 1.0);
        assert!((hv - 2.0).abs() < 1e-12);
        // Point below the reference contributes nothing.
        assert_eq!(hypervolume(&pts(&[(0.5, 0.5)]), 1.0, 1.0), 0.0);
    }

    #[test]
    fn normalized_bounds() {
        let set = pts(&[(10.0, 10.0)]);
        assert!((hypervolume_normalized(&set, 10.0, 10.0) - 1.0).abs() < 1e-12);
        assert_eq!(hypervolume_normalized(&set, 0.0, 10.0), 0.0);
        assert_eq!(hypervolume_normalized(&[], 10.0, 10.0), 0.0);
    }

    #[test]
    fn monotone_in_set_growth() {
        let small = hypervolume(&pts(&[(3.0, 1.0)]), 0.0, 0.0);
        let large = hypervolume(&pts(&[(3.0, 1.0), (1.0, 3.0)]), 0.0, 0.0);
        assert!(large >= small);
    }
}
