//! The bi-objective value of a query instance and (ε-)dominance relations.

use std::fmt;

/// The `(δ(q), f(q))` coordinate of an instance in the bi-objective space
/// (diversity, coverage). Both are maximized.
#[derive(Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Diversity `δ(q, G) ∈ [0, |V_uo|]`.
    pub delta: f64,
    /// Coverage quality `f(q, P) ∈ [0, C]`.
    pub fcov: f64,
}

impl Objectives {
    /// Creates an objective pair.
    pub fn new(delta: f64, fcov: f64) -> Self {
        debug_assert!(delta >= 0.0 && fcov >= 0.0, "objectives are nonnegative");
        Self { delta, fcov }
    }

    /// Pareto dominance (Section III): `self` dominates `other` iff it is at
    /// least as good on both objectives and strictly better on one.
    #[inline]
    pub fn dominates(&self, other: &Self) -> bool {
        (self.delta >= other.delta && self.fcov > other.fcov)
            || (self.delta > other.delta && self.fcov >= other.fcov)
    }

    /// ε-dominance: `(1+ε)δ(self) ≥ δ(other)` and `(1+ε)f(self) ≥ f(other)`.
    #[inline]
    pub fn eps_dominates(&self, other: &Self, eps: f64) -> bool {
        let factor = 1.0 + eps;
        factor * self.delta >= other.delta && factor * self.fcov >= other.fcov
    }

    /// The smallest `ε ≥ 0` for which `self` ε-dominates `other`, or
    /// `f64::INFINITY` when no finite ε works (an objective of `other` is
    /// positive while `self`'s is zero).
    pub fn needed_eps(&self, other: &Self) -> f64 {
        let need = |mine: f64, theirs: f64| -> f64 {
            if theirs <= mine {
                0.0
            } else if mine <= 0.0 {
                f64::INFINITY
            } else {
                theirs / mine - 1.0
            }
        };
        need(self.delta, other.delta).max(need(self.fcov, other.fcov))
    }

    /// The box ("boxing coordinates") of the instance under tolerance `ε`:
    /// `(⌊log(1+δ)/log(1+ε)⌋, ⌊log(1+f)/log(1+ε)⌋)` — Section IV's
    /// discretization of the bi-objective space. Instances in the same box
    /// ε-dominate one another.
    pub fn boxed(&self, eps: f64) -> BoxCoord {
        debug_assert!(eps > 0.0, "epsilon must be positive");
        let scale = (1.0 + eps).ln();
        BoxCoord {
            delta: ((1.0 + self.delta).ln() / scale).floor() as i64,
            fcov: ((1.0 + self.fcov).ln() / scale).floor() as i64,
        }
    }
}

impl fmt::Debug for Objectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(δ={:.4}, f={:.4})", self.delta, self.fcov)
    }
}

/// A box in the discretized bi-objective space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxCoord {
    /// Discretized diversity coordinate `δ_ε(q)`.
    pub delta: i64,
    /// Discretized coverage coordinate `f_ε(q)`.
    pub fcov: i64,
}

impl BoxCoord {
    /// Strict box dominance: at least as large on both axes and strictly
    /// larger on one.
    #[inline]
    pub fn dominates(&self, other: &Self) -> bool {
        (self.delta >= other.delta && self.fcov > other.fcov)
            || (self.delta > other.delta && self.fcov >= other.fcov)
    }

    /// `Box(self) ⪰ Box(other)`: dominates or equal.
    #[inline]
    pub fn dominates_or_eq(&self, other: &Self) -> bool {
        self == other || self.dominates(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_cases() {
        let a = Objectives::new(2.0, 2.0);
        let b = Objectives::new(1.0, 2.0);
        let c = Objectives::new(3.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "dominance is irreflexive");
    }

    #[test]
    fn eps_dominance_relaxes_dominance() {
        let a = Objectives::new(2.0, 2.0);
        let b = Objectives::new(2.2, 2.0);
        assert!(!a.dominates(&b));
        assert!(a.eps_dominates(&b, 0.1 + 1e-12));
        assert!(!a.eps_dominates(&b, 0.05));
        // ε-dominance is reflexive for any ε > 0.
        assert!(a.eps_dominates(&a, 1e-9));
    }

    #[test]
    fn needed_eps_matches_eps_dominates() {
        let a = Objectives::new(2.0, 4.0);
        let b = Objectives::new(3.0, 5.0);
        let eps = a.needed_eps(&b);
        assert!((eps - 0.5).abs() < 1e-12);
        assert!(a.eps_dominates(&b, eps + 1e-12));
        assert!(!a.eps_dominates(&b, eps - 1e-3));
    }

    #[test]
    fn needed_eps_zero_cases() {
        let zero = Objectives::new(0.0, 0.0);
        let pos = Objectives::new(1.0, 0.0);
        assert_eq!(zero.needed_eps(&zero), 0.0);
        assert_eq!(pos.needed_eps(&zero), 0.0);
        assert_eq!(zero.needed_eps(&pos), f64::INFINITY);
    }

    #[test]
    fn box_coordinates() {
        let eps = 0.3;
        let a = Objectives::new(2.0, 2.0);
        let b = a.boxed(eps);
        let expected = ((3.0f64).ln() / (1.3f64).ln()).floor() as i64;
        assert_eq!(b.delta, expected);
        assert_eq!(b.fcov, expected);
        // Same box ⇒ mutual ε-dominance modulo discretization.
        let c = Objectives::new(2.1, 2.1).boxed(eps);
        assert_eq!(b, c);
    }

    #[test]
    fn box_dominance() {
        let a = BoxCoord { delta: 2, fcov: 3 };
        let b = BoxCoord { delta: 2, fcov: 2 };
        assert!(a.dominates(&b));
        assert!(a.dominates_or_eq(&a));
        assert!(!a.dominates(&a));
        let c = BoxCoord { delta: 3, fcov: 1 };
        assert!(!a.dominates(&c) && !c.dominates(&a));
    }
}
