//! Practical fairness measures expressible through group coverage
//! (Section III, "Problem statement"): equal opportunity and disparate
//! impact ("80% rule").

use fairsqg_graph::CoverageSpec;

/// Disparate-impact ratio of a two-group (or multi-group) answer: the size
/// of the smallest covered group over the largest. The "80% rule" of \[18\]
/// asks for a ratio of at least `0.8`.
pub fn disparate_impact(counts: &[u32]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max == 0 {
        return 1.0; // vacuously balanced
    }
    min as f64 / max as f64
}

/// Whether an answer satisfies the `ratio`-rule (e.g. `0.8` for the 80%
/// rule): every group's coverage is at least `ratio` times the largest.
pub fn satisfies_ratio_rule(counts: &[u32], ratio: f64) -> bool {
    disparate_impact(counts) + 1e-12 >= ratio
}

/// Builds a coverage spec enforcing a disparate-impact floor: the majority
/// group must be covered with `majority` matches and every other group with
/// at least `ceil(ratio × majority)` (the paper's "80% rules" example,
/// with group 0 as the majority).
pub fn ratio_rule_spec(groups: usize, majority: u32, ratio: f64) -> CoverageSpec {
    assert!(groups >= 1);
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let minority = ((majority as f64) * ratio).ceil() as u32;
    let mut constraints = vec![minority; groups];
    constraints[0] = majority;
    CoverageSpec::new(constraints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disparate_impact_ratio() {
        assert!((disparate_impact(&[100, 80]) - 0.8).abs() < 1e-12);
        assert!((disparate_impact(&[80, 100]) - 0.8).abs() < 1e-12);
        assert_eq!(disparate_impact(&[0, 0]), 1.0);
        assert_eq!(disparate_impact(&[10, 0]), 0.0);
    }

    #[test]
    fn ratio_rule() {
        assert!(satisfies_ratio_rule(&[100, 80], 0.8));
        assert!(!satisfies_ratio_rule(&[100, 79], 0.8));
        assert!(satisfies_ratio_rule(&[50, 50, 50], 1.0));
    }

    #[test]
    fn ratio_rule_spec_shapes_constraints() {
        let spec = ratio_rule_spec(2, 100, 0.8);
        assert_eq!(spec.constraints(), &[100, 80]);
        let spec3 = ratio_rule_spec(3, 50, 0.5);
        assert_eq!(spec3.constraints(), &[50, 25, 25]);
    }

    #[test]
    #[should_panic(expected = "ratio must be in [0, 1]")]
    fn invalid_ratio_rejected() {
        ratio_rule_spec(2, 10, 1.5);
    }
}
