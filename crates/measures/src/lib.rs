//! # fairsqg-measures
//!
//! Quality measures for FairSQG query instances (Section III) and the
//! machinery of Pareto optimality:
//!
//! * [`DiversityMeasure`] — max-sum result diversification `δ(q, G)`,
//! * [`coverage_score`] / [`is_feasible`] — group-coverage quality
//!   `f(q, P)` and the feasibility test,
//! * [`Objectives`] with dominance, ε-dominance, and the "boxing"
//!   coordinates that discretize the bi-objective space (Section IV),
//! * [`kung_pareto`] — Kung's algorithm for exact Pareto sets (the `Kungs`
//!   baseline of Section V),
//! * [`eps_indicator`] / [`r_indicator`] — the effectiveness indicators
//!   used throughout the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod diversity;
mod fairness;
mod hypervolume;
mod indicators;
mod objectives;
mod pareto;
mod sampling;

pub use coverage::{coverage_score, is_feasible};
pub use diversity::{
    DiversityConfig, DiversityMeasure, DiversityObjective, MeasureCacheStats, Relevance,
    SharedDiversityCache,
};
pub use fairness::{disparate_impact, ratio_rule_spec, satisfies_ratio_rule};
pub use hypervolume::{hypervolume, hypervolume_normalized};
pub use indicators::{eps_indicator, min_eps, r_indicator};
pub use objectives::{BoxCoord, Objectives};
pub use pareto::{kung_pareto, sweep_pareto};
pub use sampling::sample_pairs;
