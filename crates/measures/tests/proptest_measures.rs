//! Property-based tests of the measure algebra: dominance laws, box math,
//! Pareto algorithms, indicators, and hypervolume.

use fairsqg_graph::CoverageSpec;
use fairsqg_measures::{
    coverage_score, eps_indicator, hypervolume, is_feasible, kung_pareto, min_eps, sweep_pareto,
    BoxCoord, Objectives,
};
use proptest::prelude::*;

fn arb_obj() -> impl Strategy<Value = Objectives> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(d, f)| Objectives::new(d, f))
}

fn arb_objs(n: usize) -> impl Strategy<Value = Vec<Objectives>> {
    proptest::collection::vec(arb_obj(), 1..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dominance is irreflexive, asymmetric, and transitive.
    #[test]
    fn dominance_is_a_strict_order(a in arb_obj(), b in arb_obj(), c in arb_obj()) {
        prop_assert!(!a.dominates(&a));
        if a.dominates(&b) {
            prop_assert!(!b.dominates(&a));
        }
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    /// `needed_eps` is exactly the threshold of `eps_dominates`, and
    /// ε-dominance is monotone in ε (Lemma 4).
    #[test]
    fn needed_eps_is_the_threshold(a in arb_obj(), b in arb_obj(), bump in 0.001f64..1.0) {
        let e = a.needed_eps(&b);
        if e.is_finite() {
            prop_assert!(a.eps_dominates(&b, e + 1e-9));
            if e > 1e-9 {
                prop_assert!(!a.eps_dominates(&b, e * (1.0 - 1e-9) - 1e-12));
            }
            // Lemma 4: larger ε preserves the relation.
            prop_assert!(a.eps_dominates(&b, e + bump));
        } else {
            // Infinite: never dominated at any finite ε.
            prop_assert!(!a.eps_dominates(&b, 1e9));
        }
    }

    /// Dominance implies box dominance-or-equality at every ε, and points
    /// sharing a box mutually shifted-ε-dominate.
    #[test]
    fn box_math_is_consistent(a in arb_obj(), b in arb_obj(), eps in 0.05f64..1.0) {
        let (ba, bb) = (a.boxed(eps), b.boxed(eps));
        if a.dominates(&b) {
            prop_assert!(
                ba.dominates_or_eq(&bb),
                "dominance must survive discretization: {a:?} {b:?} {ba:?} {bb:?}"
            );
        }
        if ba == bb {
            let factor = 1.0 + eps;
            prop_assert!(factor * (1.0 + a.delta) >= 1.0 + b.delta);
            prop_assert!(factor * (1.0 + a.fcov) >= 1.0 + b.fcov);
            prop_assert!(factor * (1.0 + b.delta) >= 1.0 + a.delta);
        }
        // Box dominance is transitive by construction of BoxCoord.
        let bc = BoxCoord { delta: ba.delta + 1, fcov: ba.fcov + 1 };
        prop_assert!(bc.dominates(&ba));
    }

    /// Kung's algorithm agrees with the sweep and with brute force.
    #[test]
    fn kung_equals_sweep_equals_bruteforce(points in arb_objs(40)) {
        let kung = kung_pareto(&points);
        let sweep = sweep_pareto(&points);
        prop_assert_eq!(&kung, &sweep);
        let brute: Vec<usize> = (0..points.len())
            .filter(|&i| {
                points.iter().all(|q| !q.dominates(&points[i]))
                    && points[..i].iter().all(|q| *q != points[i])
            })
            .collect();
        prop_assert_eq!(kung, brute);
    }

    /// The exact Pareto front always has ε_m = 0 and indicator 1.
    #[test]
    fn exact_front_scores_one(points in arb_objs(30), eps in 0.05f64..1.0) {
        let front: Vec<Objectives> =
            kung_pareto(&points).into_iter().map(|i| points[i]).collect();
        prop_assert_eq!(min_eps(&front, &points), 0.0);
        prop_assert_eq!(eps_indicator(&front, &points, eps), 1.0);
    }

    /// Removing points from a set can only increase ε_m.
    #[test]
    fn min_eps_is_monotone_in_the_set(points in arb_objs(20)) {
        let front: Vec<Objectives> =
            kung_pareto(&points).into_iter().map(|i| points[i]).collect();
        if front.len() >= 2 {
            let reduced = &front[..front.len() - 1];
            prop_assert!(min_eps(reduced, &points) >= min_eps(&front, &points));
        }
    }

    /// Coverage score stays within [0, C]; exact coverage is the unique
    /// maximizer; feasibility matches the constraint check.
    #[test]
    fn coverage_bounds(counts in proptest::collection::vec(0u32..200, 1..5),
                       cons in proptest::collection::vec(1u32..100, 1..5)) {
        let m = counts.len().min(cons.len());
        let counts = &counts[..m];
        let spec = CoverageSpec::new(cons[..m].to_vec());
        let f = coverage_score(counts, &spec);
        prop_assert!(f >= 0.0 && f <= spec.total() as f64);
        let exact = coverage_score(spec.constraints(), &spec);
        prop_assert_eq!(exact, spec.total() as f64);
        prop_assert!(f <= exact);
        prop_assert_eq!(
            is_feasible(counts, &spec),
            counts.iter().zip(spec.constraints()).all(|(&g, &w)| g >= w)
        );
    }

    /// Hypervolume is monotone under adding points and bounded by the
    /// bounding box of the set.
    #[test]
    fn hypervolume_monotone_and_bounded(points in arb_objs(20), extra in arb_obj()) {
        let hv = hypervolume(&points, 0.0, 0.0);
        let mut more = points.clone();
        more.push(extra);
        prop_assert!(hypervolume(&more, 0.0, 0.0) + 1e-9 >= hv);
        let dmax = points.iter().map(|o| o.delta).fold(0.0, f64::max);
        let fmax = points.iter().map(|o| o.fcov).fold(0.0, f64::max);
        prop_assert!(hv <= dmax * fmax + 1e-9);
    }
}
