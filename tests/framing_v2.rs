//! Property tests for wire framing v2: the push-based [`FrameDecoder`]
//! that the multiplexed server and client demultiplex with.
//!
//! Two invariants carry the whole mux protocol:
//!
//! 1. **Lossless demultiplexing** — however many logical streams are
//!    interleaved into one byte stream, and however the bytes are
//!    chunked, every tagged frame comes out exactly once, in stream
//!    order, and regroups to the original streams.
//! 2. **Resync after garbage** — an oversized or unreadable line yields
//!    an in-sequence error and decoding resumes at the next newline;
//!    frames after the garbage are never lost.

use fairsqg::wire::{FrameDecoder, Value};
use proptest::prelude::*;

/// Builds one tagged frame: `{"rid": stream, "seq": n, "payload": ...}`.
fn frame(stream: u64, seq: u64, payload: &str) -> String {
    Value::object([
        ("rid", Value::from(stream)),
        ("seq", Value::from(seq)),
        ("payload", Value::from(payload)),
    ])
    .to_string()
}

/// Interleaves per-stream frame sequences according to `schedule` (each
/// entry picks the next stream with pending frames, round-robin offset).
fn interleave(streams: &[Vec<String>], schedule: &[usize]) -> (Vec<u8>, usize) {
    let mut cursors = vec![0usize; streams.len()];
    let mut bytes = Vec::new();
    let mut emitted = 0usize;
    let mut pick = 0usize;
    let total: usize = streams.iter().map(Vec::len).sum();
    while emitted < total {
        let hint = schedule.get(emitted).copied().unwrap_or(pick);
        // Find the next stream (from the hint) that still has frames.
        let s = (0..streams.len())
            .map(|k| (hint + k) % streams.len())
            .find(|&s| cursors[s] < streams[s].len())
            .expect("some stream has frames left");
        bytes.extend_from_slice(streams[s][cursors[s]].as_bytes());
        bytes.push(b'\n');
        cursors[s] += 1;
        emitted += 1;
        pick = hint + 1;
    }
    (bytes, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: interleaved tagged frames demultiplex losslessly
    /// regardless of chunking.
    #[test]
    fn interleaved_frames_demultiplex_losslessly(
        stream_sizes in proptest::collection::vec(0usize..12, 1..5),
        payload_seed in 0u64..1_000_000_007,
        schedule in proptest::collection::vec(0usize..5, 0..48),
        chunk in 1usize..97,
    ) {
        let streams: Vec<Vec<String>> = stream_sizes
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n as u64)
                    .map(|i| {
                        let payload =
                            format!("p{}-{}", payload_seed.wrapping_mul(s as u64 + 1), i);
                        frame(s as u64, i, &payload)
                    })
                    .collect()
            })
            .collect();
        let (bytes, total) = interleave(&streams, &schedule);

        let mut dec = FrameDecoder::new(1 << 20);
        let mut lines = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.next_frame() {
                lines.push(f.expect("no garbage injected"));
            }
        }
        dec.finish();
        while let Some(f) = dec.next_frame() {
            lines.push(f.expect("no garbage injected"));
        }
        prop_assert_eq!(lines.len(), total);

        // Regroup by rid: every stream must come back complete and in
        // its original order.
        let mut got: Vec<Vec<String>> = vec![Vec::new(); streams.len()];
        for line in &lines {
            let v = fairsqg::wire::parse(line).expect("frames stay valid JSON");
            let rid = v.get("rid").and_then(Value::as_u64).unwrap() as usize;
            got[rid].push(line.clone());
        }
        for (s, want) in streams.iter().enumerate() {
            prop_assert_eq!(&got[s], want, "stream {} corrupted", s);
        }
    }

    /// Invariant 2: an over-limit line surfaces as an in-sequence error
    /// and the decoder resumes at the next newline — frames on either
    /// side are never lost or reordered.
    #[test]
    fn oversized_garbage_resyncs_at_next_newline(
        before in 0usize..6,
        after in 0usize..6,
        garbage_extra in 1usize..64,
        garbage_byte in 1u8..255,
        chunk in 1usize..97,
    ) {
        // The garbage line must not contain the newline delimiter.
        let garbage_byte = if garbage_byte == b'\n' { b'{' } else { garbage_byte };
        let limit = 256usize;
        let mut bytes = Vec::new();
        for i in 0..before {
            bytes.extend_from_slice(frame(0, i as u64, "pre").as_bytes());
            bytes.push(b'\n');
        }
        // One line strictly over the frame-size guard.
        bytes.extend(std::iter::repeat_n(garbage_byte, limit + garbage_extra));
        bytes.push(b'\n');
        for i in 0..after {
            bytes.extend_from_slice(frame(1, i as u64, "post").as_bytes());
            bytes.push(b'\n');
        }

        let mut dec = FrameDecoder::new(limit);
        let mut ok_lines = Vec::new();
        let mut errors = 0usize;
        let mut error_at = None;
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.next_frame() {
                match f {
                    Ok(line) => ok_lines.push(line),
                    Err(_) => {
                        errors += 1;
                        error_at.get_or_insert(ok_lines.len());
                    }
                }
            }
        }
        dec.finish();
        while let Some(f) = dec.next_frame() {
            match f {
                Ok(line) => ok_lines.push(line),
                Err(_) => {
                    errors += 1;
                    error_at.get_or_insert(ok_lines.len());
                }
            }
        }

        prop_assert_eq!(errors, 1, "exactly one in-sequence error");
        prop_assert_eq!(error_at, Some(before), "error lands between the groups");
        prop_assert_eq!(ok_lines.len(), before + after);
        for (i, line) in ok_lines.iter().enumerate() {
            let v = fairsqg::wire::parse(line).unwrap();
            let (rid, seq) = if i < before { (0, i as u64) } else { (1, (i - before) as u64) };
            prop_assert_eq!(v.get("rid").and_then(Value::as_u64), Some(rid));
            prop_assert_eq!(v.get("seq").and_then(Value::as_u64), Some(seq));
        }
    }
}
