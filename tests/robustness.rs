//! Robustness tests that need no fail-point injection: resource budgets
//! surfacing through the service, idempotent submission dedup, and the
//! server's tolerance of hostile wire input.

use fairsqg::algo::MatchBudget;
use fairsqg::datagen::{social_graph, SocialConfig};
use fairsqg::service::{
    AlgoKind, Client, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, RetryPolicy,
    ServerOptions, SubmitError,
};
use fairsqg::wire::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TEMPLATE: &str = "\
    node u0 : director\n\
    node u1 : user\n\
    edge u1 -recommend-> u0\n\
    where u1.yearsOfExp >= ?\n\
    output u0\n";

fn registry(name: &str, directors: usize, seed: u64) -> Arc<GraphRegistry> {
    let r = Arc::new(GraphRegistry::new());
    r.insert(
        name,
        social_graph(SocialConfig {
            directors,
            majority_share: 0.6,
            seed,
        }),
    );
    r
}

fn spec(graph: &str) -> JobSpec {
    JobSpec {
        graph: graph.into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 5,
        algo: AlgoKind::EnumQGen,
        threads: 0,
        eps: 0.05,
        lambda: 0.5,
        deadline_ms: None,
        budget: MatchBudget::UNLIMITED,
        request_key: None,
        priority: fairsqg::service::DEFAULT_PRIORITY,
        client: None,
        subscribe: false,
    }
}

fn wait_done(engine: &Engine, id: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = engine.status(id).unwrap().state;
        if matches!(
            state,
            JobState::Done | JobState::Failed | JobState::Cancelled
        ) {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A starved step budget produces a partial archive flagged `truncated`,
/// and the result stats name the budget that tripped (acceptance criterion
/// for resource budgets).
#[test]
fn budget_trip_yields_truncated_result_naming_the_budget() {
    let registry = registry("g", 200, 3);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());

    let mut capped = spec("g");
    capped.budget = MatchBudget {
        max_steps: Some(1),
        ..MatchBudget::UNLIMITED
    };
    let id = engine.submit(capped).unwrap();
    assert_eq!(wait_done(&engine, id), JobState::Done);
    let status = engine.status(id).unwrap();
    assert!(status.truncated, "budget-capped run must be truncated");

    let result = engine.result(id).unwrap();
    let tripped = result
        .get("stats")
        .and_then(|s| s.get("budget_tripped"))
        .expect("stats.budget_tripped");
    assert_eq!(
        tripped.get("budget").and_then(Value::as_str),
        Some("max_steps"),
        "the tripped budget is named"
    );
    assert_eq!(tripped.get("limit").and_then(Value::as_u64), Some(1));

    let stats = engine.stats_value();
    let trips = stats
        .get("robustness")
        .and_then(|r| r.get("budget_trips"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(trips >= 1, "budget trip must be counted, got {trips}");

    // Truncated results must not poison the cross-request cache: an
    // uncapped resubmission computes fresh and completes fully.
    let id2 = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_done(&engine, id2), JobState::Done);
    let full = engine.status(id2).unwrap();
    assert!(!full.from_cache && !full.truncated);
    engine.shutdown();
}

/// An engine-level default budget applies to specs that don't set one, and
/// per-job budgets win over the default.
#[test]
fn engine_default_budget_merges_into_specs() {
    let registry = registry("g", 200, 4);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            budget: MatchBudget {
                max_steps: Some(1),
                ..MatchBudget::UNLIMITED
            },
            ..EngineConfig::default()
        },
    );
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_done(&engine, id), JobState::Done);
    assert!(
        engine.status(id).unwrap().truncated,
        "default budget must apply"
    );

    // A per-job budget overrides the engine default on that axis.
    let mut generous = spec("g");
    generous.budget = MatchBudget {
        max_steps: Some(u64::MAX),
        ..MatchBudget::UNLIMITED
    };
    let id2 = engine.submit(generous).unwrap();
    assert_eq!(wait_done(&engine, id2), JobState::Done);
    assert!(!engine.status(id2).unwrap().truncated);
    engine.shutdown();
}

/// Two submissions carrying the same `request_key` map to one job — the
/// contract that makes client-side resend-on-reconnect safe.
#[test]
fn request_key_dedups_to_one_job() {
    let registry = registry("g", 100, 5);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let mut keyed = spec("g");
    keyed.request_key = Some("replay-1".into());
    let id1 = engine.submit(keyed.clone()).unwrap();
    let id2 = engine.submit(keyed.clone()).unwrap();
    assert_eq!(id1, id2, "same request_key must reuse the job");
    let stats = engine.stats_value();
    assert_eq!(
        stats
            .get("robustness")
            .and_then(|r| r.get("dedup_hits"))
            .and_then(Value::as_u64),
        Some(1)
    );

    // A different key is a different job.
    let mut other = keyed.clone();
    other.request_key = Some("replay-2".into());
    let id3 = engine.submit(other).unwrap();
    assert_ne!(id1, id3);
    engine.shutdown();
}

/// Raw-socket abuse of a live server: garbage JSON, binary noise, and an
/// over-limit frame each get a structured error response on a connection
/// that keeps working — and the server survives to serve a clean client.
#[test]
fn server_answers_garbage_with_structured_errors() {
    let registry = registry("g", 100, 6);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerOptions {
            max_frame_bytes: 512,
            ..ServerOptions::default()
        },
    )
    .unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |payload: &[u8]| -> Value {
        writer.write_all(payload).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        fairsqg::wire::parse(&line).expect("server replies are always valid JSON")
    };

    for payload in [
        b"this is not json\n".to_vec(),
        b"{\"op\": \n".to_vec(),
        vec![0xff, 0x00, 0x9b, b'\n'],
        {
            let mut big = vec![b'x'; 4096];
            big.push(b'\n');
            big
        },
        b"{\"op\":\"submit\",\"job\":{\"graph\":42}}\n".to_vec(),
        b"{\"op\":\"no_such_op\"}\n".to_vec(),
    ] {
        let reply = roundtrip(&payload);
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
        assert!(
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .is_some(),
            "error replies carry a code: {reply}"
        );
    }

    // The same connection still serves valid requests after all that.
    let pong = roundtrip(b"{\"op\":\"ping\"}\n");
    assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));

    // And a fresh protocol client works end to end.
    let mut client = Client::connect_with(&addr.to_string(), RetryPolicy::default()).unwrap();
    client.ping().unwrap();
    let id = client.submit_idempotent(&spec("g")).unwrap();
    let result = client.wait(id, Duration::from_secs(60)).unwrap();
    assert!(result.get("result").is_some());

    client.shutdown().unwrap();
    // Close the raw socket before joining: the server waits on its
    // connection threads, and ours blocks reading until EOF.
    drop(writer);
    drop(reader);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// The `load` op reports TSV syntax errors as typed protocol errors with
/// line/column positions, and missing files as `load_failed`.
#[test]
fn load_op_reports_typed_parse_positions() {
    let registry = registry("g", 50, 7);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    let dir = std::env::temp_dir().join(format!("fairsqg-robust-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.tsv");
    std::fs::write(&bad, "0\tdirector\tgender=x\n\n").unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut request = |v: &Value| -> Value {
        let mut text = v.to_string();
        text.push('\n');
        writer.write_all(text.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        fairsqg::wire::parse(&line).unwrap()
    };

    let reply = request(&Value::object([
        ("op", Value::from("load")),
        ("name", Value::from("bad")),
        ("path", Value::from(bad.to_string_lossy().to_string())),
    ]));
    let error = reply.get("error").expect("load of a bad file fails");
    assert_eq!(
        error.get("code").and_then(Value::as_str),
        Some("parse_error")
    );
    assert_eq!(error.get("line").and_then(Value::as_u64), Some(1));
    assert!(error.get("column").and_then(Value::as_u64).unwrap() > 1);

    let reply = request(&Value::object([
        ("op", Value::from("load")),
        ("name", Value::from("gone")),
        ("path", Value::from("/nonexistent/graph.tsv")),
    ]));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("load_failed")
    );

    // The failed loads left the registry serving the original graph.
    let reply = request(&Value::object([("op", Value::from("ping"))]));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));

    let _ = std::fs::remove_dir_all(&dir);
    drop(writer);
    drop(reader);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// Overload soak (CI smoke): 2× the queue capacity of mixed-priority jobs
/// thrown at a 2-worker engine from concurrent submitters. Every accepted
/// job settles (zero hangs), every rejection is a *typed* overload
/// response — never `Internal`, never a panic — and the queue never grows
/// past its bound.
#[test]
fn overload_soak_settles_everything_with_structured_rejections() {
    let registry = registry("g", 120, 31);
    let capacity = 8;
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: capacity,
            cache_entries: 0,
            coalesce: false,
            client_quota: 4,
            ..EngineConfig::default()
        },
    ));
    let total = capacity * 2 * 2; // 2× capacity, from each of 2 submitters
    let handles: Vec<_> = (0..2u64)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut rejected = 0u64;
                for i in 0..(total / 2) as u64 {
                    let mut s = spec("g");
                    s.eps = 0.03 + (t as f64 * 64.0 + i as f64) * 1e-4; // distinct work
                    s.priority = (i % 4) as u8;
                    s.client = Some(format!("soak-{t}"));
                    s.deadline_ms = Some(5_000);
                    match engine.submit(s) {
                        Ok(id) => accepted.push(id),
                        Err(
                            SubmitError::Overloaded { .. }
                            | SubmitError::Shed { .. }
                            | SubmitError::DeadlineUnmeetable { .. }
                            | SubmitError::QuotaExceeded { .. },
                        ) => rejected += 1,
                        Err(other) => panic!("unstructured rejection under load: {other:?}"),
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for h in handles {
        let (a, r) = h.join().expect("submitter panicked");
        accepted.extend(a);
        rejected += r;
    }
    assert_eq!(accepted.len() as u64 + rejected, total as u64);
    // Zero hangs: every accepted job reaches a terminal state.
    for id in &accepted {
        let state = wait_done(&engine, *id);
        assert!(state.is_terminal(), "job {id} settled as {state:?}");
    }
    assert!(
        engine.queue_depth() <= capacity,
        "the queue bound held under soak"
    );
    // The stats surface stays coherent after the storm.
    let stats = engine.stats_value();
    assert!(stats.get("pressure").is_some());
    assert!(stats.get("submitted").and_then(Value::as_u64).unwrap() >= accepted.len() as u64);
    assert!(
        stats.get("rejected").and_then(Value::as_u64).unwrap() >= rejected,
        "typed rejections are counted"
    );
    engine.shutdown();
}
