//! Cross-crate property-based tests on randomly generated graphs,
//! templates, and groups: the paper's lemmas must hold on arbitrary
//! well-formed inputs, and the backtracking matcher must agree with the
//! brute-force reference.

use fairsqg::matcher::{match_output_set, match_output_set_bruteforce, MatchOptions};
use fairsqg::prelude::*;
use fairsqg::query::{InstanceLattice, QNodeId};
use proptest::prelude::*;

/// A random small graph: up to 14 nodes over 2 labels, up to 2 attributes,
/// random edges over 2 edge labels.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..14,
        proptest::collection::vec((0u8..2, 0i64..6, 0i64..6), 2..14),
        proptest::collection::vec((0usize..14, 0usize..14, 0u8..2), 0..30),
    )
        .prop_map(|(_, nodes, edges)| {
            let mut b = GraphBuilder::new();
            let labels = ["alpha", "beta"];
            let elabels = ["e0", "e1"];
            let ids: Vec<NodeId> = nodes
                .iter()
                .map(|&(l, a0, a1)| {
                    b.add_named_node(
                        labels[l as usize],
                        &[("a0", AttrValue::Int(a0)), ("a1", AttrValue::Int(a1))],
                    )
                })
                .collect();
            for &(s, d, l) in &edges {
                if s < ids.len() && d < ids.len() && s != d {
                    b.add_named_edge(ids[s], ids[d], elabels[l as usize]);
                }
            }
            b.finish()
        })
}

/// A random 2–3 node template over the `arb_graph` vocabulary.
fn arb_template(graph: &Graph) -> Option<(QueryTemplate, RefinementDomains)> {
    let s = graph.schema();
    let alpha = s.find_node_label("alpha")?;
    let beta = s.find_node_label("beta").unwrap_or(alpha);
    let e0 = s.find_edge_label("e0")?;
    let a0 = s.find_attr("a0")?;
    let mut tb = TemplateBuilder::new();
    let u0 = tb.node(alpha);
    let u1 = tb.node(beta);
    tb.optional_edge(u1, u0, e0);
    tb.range_literal(u0, a0, CmpOp::Ge);
    let t = tb.finish(u0).ok()?;
    let d = RefinementDomains::build(&t, graph, DomainConfig::default());
    Some((t, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backtracking matcher agrees with brute force on every instance
    /// of a random template over a random graph.
    #[test]
    fn matcher_agrees_with_bruteforce(graph in arb_graph()) {
        if let Some((t, d)) = arb_template(&graph) {
            let lat = InstanceLattice::new(&d);
            for inst in lat.enumerate() {
                let q = ConcreteQuery::materialize(&t, &d, &inst);
                let fast = match_output_set(&graph, &q, MatchOptions::default());
                let slow = match_output_set_bruteforce(&graph, &q);
                prop_assert_eq!(fast, slow);
            }
        }
    }

    /// Lemma 2 (2): refinement shrinks match sets and diversity.
    #[test]
    fn refinement_monotonicity(graph in arb_graph()) {
        if let Some((t, d)) = arb_template(&graph) {
            let measure = DiversityMeasure::new(
                &graph,
                t.output_label(),
                DiversityConfig { pair_cap: 0, ..DiversityConfig::default() },
            );
            let lat = InstanceLattice::new(&d);
            for inst in lat.enumerate() {
                let q = ConcreteQuery::materialize(&t, &d, &inst);
                let m = match_output_set(&graph, &q, MatchOptions::default());
                let delta = measure.score(&m);
                for (_, child) in lat.children(&inst) {
                    let qc = ConcreteQuery::materialize(&t, &d, &child);
                    let mc = match_output_set(&graph, &qc, MatchOptions::default());
                    prop_assert!(mc.iter().all(|v| m.contains(v)),
                        "match containment violated");
                    let dc = measure.score(&mc);
                    prop_assert!(dc <= delta + 1e-9, "diversity monotonicity violated");
                }
            }
        }
    }

    /// Lemma 2 (2), coverage side: while both parent and child are
    /// feasible, refinement cannot reduce the coverage score.
    #[test]
    fn coverage_monotonicity_on_feasible_chains(graph in arb_graph(), c in 1u32..3) {
        if let Some((t, d)) = arb_template(&graph) {
            let s = graph.schema();
            let a1 = s.find_attr("a1").unwrap();
            let groups = GroupSet::by_attribute(
                &graph, a1, &[AttrValue::Int(0), AttrValue::Int(1)]);
            let spec = CoverageSpec::equal_opportunity(2, c);
            let lat = InstanceLattice::new(&d);
            for inst in lat.enumerate() {
                let q = ConcreteQuery::materialize(&t, &d, &inst);
                let m = match_output_set(&graph, &q, MatchOptions::default());
                let counts = groups.count_in_groups(&m);
                if !is_feasible(&counts, &spec) { continue; }
                let f_parent = coverage_score(&counts, &spec);
                for (_, child) in lat.children(&inst) {
                    let qc = ConcreteQuery::materialize(&t, &d, &child);
                    let mc = match_output_set(&graph, &qc, MatchOptions::default());
                    let cc = groups.count_in_groups(&mc);
                    if is_feasible(&cc, &spec) {
                        let f_child = coverage_score(&cc, &spec);
                        prop_assert!(
                            f_child + 1e-9 >= f_parent,
                            "feasible refinement must not reduce f ({f_child} < {f_parent})"
                        );
                    }
                }
            }
        }
    }

    /// The generation pipeline never panics and returns feasible,
    /// ε-covering sets on random inputs (robustness sweep).
    #[test]
    fn generation_robustness(graph in arb_graph(), eps in 0.05f64..0.9) {
        if let Some((t, _)) = arb_template(&graph) {
            let s = graph.schema();
            let a1 = s.find_attr("a1").unwrap();
            let groups = GroupSet::by_attribute(
                &graph, a1, &[AttrValue::Int(0), AttrValue::Int(1)]);
            let spec = CoverageSpec::equal_opportunity(2, 1);
            let fair = FairSqg::new(&graph).epsilon(eps).diversity(DiversityConfig {
                pair_cap: 0,
                ..DiversityConfig::default()
            });
            let bi = fair.generate(&t, &groups, &spec, Algorithm::BiQGen);
            let en = fair.generate(&t, &groups, &spec, Algorithm::EnumQGen);
            // Same feasible space ⇒ both empty or both non-empty.
            prop_assert_eq!(bi.entries.is_empty(), en.entries.is_empty());
            for e in bi.entries.iter().chain(en.entries.iter()) {
                prop_assert!(e.result.feasible);
            }
            // BiQGen must shifted-ε-cover EnumQGen's set.
            let factor = 1.0 + eps;
            for eo in en.objectives() {
                prop_assert!(bi.entries.iter().any(|e| {
                    let o = e.objectives();
                    factor * (1.0 + o.delta) >= 1.0 + eo.delta
                        && factor * (1.0 + o.fcov) >= 1.0 + eo.fcov
                }), "BiQGen fails to cover EnumQGen point {:?}", eo);
            }
        }
    }

    /// Online maintenance respects the size cap and ε monotonicity on
    /// random streams.
    #[test]
    fn online_invariants(graph in arb_graph(), k in 1usize..6, seed in 0u64..1000) {
        if let Some((t, d)) = arb_template(&graph) {
            let s = graph.schema();
            let a1 = s.find_attr("a1").unwrap();
            let groups = GroupSet::by_attribute(
                &graph, a1, &[AttrValue::Int(0), AttrValue::Int(1)]);
            let spec = CoverageSpec::equal_opportunity(2, 1);
            let cfg = Configuration::new(
                &graph, &t, &d, &groups, &spec, 0.1,
                DiversityConfig { pair_cap: 0, ..DiversityConfig::default() });
            let stream = ShuffledStream::new(&d, seed);
            let (out, trace) = online_qgen(
                cfg,
                OnlineOptions { k, window: 4, initial_eps: 0.05 },
                stream,
            );
            prop_assert!(out.entries.len() <= k);
            for w in trace.windows(2) {
                prop_assert!(w[1].eps >= w[0].eps);
                prop_assert!(w[1].len <= k);
            }
        }
    }
}

/// Non-proptest sanity check that `arb_template` exercises the optional
/// edge machinery (QNodeId(1) inactive at the root).
#[test]
fn arb_template_root_isolates_secondary_node() {
    let mut b = GraphBuilder::new();
    b.add_named_node(
        "alpha",
        &[("a0", AttrValue::Int(0)), ("a1", AttrValue::Int(0))],
    );
    b.add_named_node(
        "beta",
        &[("a0", AttrValue::Int(1)), ("a1", AttrValue::Int(1))],
    );
    let g = {
        let mut bb = b;
        bb.schema_mut().edge_label("e0");
        bb.schema_mut().edge_label("e1");
        bb.finish()
    };
    let (t, d) = arb_template(&g).unwrap();
    let root = Instantiation::root(&d);
    let q = ConcreteQuery::materialize(&t, &d, &root);
    assert!(q.active[0]);
    assert!(!q.active[QNodeId(1).index()]);
}
