//! End-to-end tests of the `fairsqg-service` subsystem: wire round-trips
//! against an in-process server on an ephemeral port, deadline truncation,
//! cancellation, admission control, and concurrent in-flight jobs.

use fairsqg::datagen::{social_graph, SocialConfig};
use fairsqg::service::{
    AlgoKind, Client, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, SubmitError,
};
use fairsqg::wire::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TEMPLATE: &str = "\
    node u0 : director\n\
    node u1 : user\n\
    edge u1 -recommend-> u0\n\
    where u1.yearsOfExp >= ?\n\
    output u0\n";

fn graph(directors: usize, seed: u64) -> fairsqg::graph::Graph {
    social_graph(SocialConfig {
        directors,
        majority_share: 0.6,
        seed,
    })
}

fn spec(graph: &str, deadline_ms: Option<u64>) -> JobSpec {
    JobSpec {
        graph: graph.into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 5,
        algo: AlgoKind::EnumQGen,
        threads: 0,
        eps: 0.05,
        lambda: 0.5,
        deadline_ms,
        budget: fairsqg::algo::MatchBudget::UNLIMITED,
        request_key: None,
        priority: fairsqg::service::DEFAULT_PRIORITY,
        client: None,
        subscribe: false,
    }
}

/// submit → poll → result over TCP, result caching, deadline truncation,
/// and cancel-frees-worker — all against one served engine.
#[test]
fn wire_roundtrip_cache_deadline_cancel() {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("small", graph(100, 1));
    registry.insert("slow", graph(400, 2));
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: 16,
            cache_entries: 32,
            default_deadline: None,
            ..EngineConfig::default()
        },
    ));
    let (addr, _stop, server) =
        fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = Client::connect(&addr.to_string()).unwrap();
    client.ping().unwrap();

    // Round trip: submit, wait, inspect the result body.
    let id = client.submit(&spec("small", None)).unwrap();
    let result = client.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(
        result.get("from_cache").and_then(Value::as_bool),
        Some(false)
    );
    let body = result.get("result").expect("result body");
    assert_eq!(body.get("truncated").and_then(Value::as_bool), Some(false));
    assert!(
        !body
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "a completed run must return suggestions"
    );

    // Identical resubmission is served from the cross-request cache.
    let id2 = client.submit(&spec("small", None)).unwrap();
    let cached = client.wait(id2, Duration::from_secs(60)).unwrap();
    assert_eq!(
        cached.get("from_cache").and_then(Value::as_bool),
        Some(true)
    );
    let stats = client.stats().unwrap();
    let hits = stats
        .get("result_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(hits >= 1, "cache hit must be visible in stats, got {hits}");

    // A tiny deadline yields a truncated partial archive, not a hang.
    let id3 = client.submit(&spec("slow", Some(0))).unwrap();
    let truncated = client.wait(id3, Duration::from_secs(60)).unwrap();
    assert_eq!(
        truncated
            .get("result")
            .and_then(|r| r.get("truncated"))
            .and_then(Value::as_bool),
        Some(true)
    );

    // Cancelling a job frees its worker: a subsequent job still completes.
    let id4 = client.submit(&spec("slow", None)).unwrap();
    client.cancel(id4).unwrap();
    match client.wait(id4, Duration::from_secs(60)) {
        // The cancel raced the run. Either it landed mid-run (truncated
        // partial) or the run finished first (complete archive) — both
        // are legal; what matters is the worker is freed afterwards.
        Ok(r) => {
            let body = r.get("result").expect("result body");
            match body.get("truncated").and_then(Value::as_bool) {
                Some(true) => {}
                Some(false) => assert!(
                    !body
                        .get("entries")
                        .and_then(Value::as_array)
                        .unwrap()
                        .is_empty(),
                    "a run that beat the cancel must return a full archive"
                ),
                None => panic!("missing truncated flag"),
            }
        }
        // Cancelled while still queued.
        Err(e) => assert!(e.to_string().contains("cancelled"), "unexpected: {e}"),
    }
    let id5 = client.submit(&spec("small", Some(60_000))).unwrap();
    let after = client.wait(id5, Duration::from_secs(60)).unwrap();
    assert!(after.get("result").is_some(), "worker was not freed");

    // Per-stage latency aggregates are exposed.
    let stats = client.stats().unwrap();
    let generate_count = stats
        .get("latency")
        .and_then(|l| l.get("generate"))
        .and_then(|g| g.get("count"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(generate_count >= 1);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

/// Eight jobs on eight distinct graphs are all in flight simultaneously.
#[test]
fn engine_sustains_eight_concurrent_jobs() {
    let registry = Arc::new(GraphRegistry::new());
    for i in 0..8u64 {
        registry.insert(&format!("g{i}"), graph(400, 10 + i));
    }
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 8,
            queue_capacity: 16,
            cache_entries: 0,
            default_deadline: None,
            ..EngineConfig::default()
        },
    );
    let ids: Vec<u64> = (0..8)
        .map(|i| engine.submit(spec(&format!("g{i}"), None)).unwrap())
        .collect();

    // All eight must be observed Running at the same instant.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let running = ids
            .iter()
            .filter(|&&id| engine.status(id).unwrap().state == JobState::Running)
            .count();
        if running == 8 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never saw 8 simultaneous running jobs (last count: {running})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Wind down quickly; a mid-run cancel settles as a truncated Done.
    for &id in &ids {
        engine.cancel(id);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let settled = ids
            .iter()
            .filter(|&&id| {
                matches!(
                    engine.status(id).unwrap().state,
                    JobState::Done | JobState::Cancelled | JobState::Failed
                )
            })
            .count();
        if settled == 8 {
            break;
        }
        assert!(Instant::now() < deadline, "jobs failed to settle");
        std::thread::sleep(Duration::from_millis(1));
    }
    for &id in &ids {
        assert_ne!(engine.status(id).unwrap().state, JobState::Failed);
    }
    engine.shutdown();
}

/// A full queue rejects with a structured `Overloaded`, and the rejection
/// is counted in stats.
#[test]
fn engine_overload_is_structured() {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("g", graph(400, 42));
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            cache_entries: 0,
            default_deadline: None,
            ..EngineConfig::default()
        },
    );

    // Occupy the single worker, then fill the single queue slot.
    let running = engine.submit(spec("g", None)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.status(running).unwrap().state != JobState::Running {
        assert!(Instant::now() < deadline, "worker never picked up the job");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut slow = spec("g", None);
    slow.eps = 0.07; // distinct fingerprint — not served from cache
    let queued = engine.submit(slow).unwrap();

    let mut third = spec("g", None);
    third.eps = 0.09;
    match engine.submit(third) {
        Err(SubmitError::Overloaded { capacity, .. }) => assert_eq!(capacity, 1),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = engine.stats_value();
    assert!(stats.get("rejected").and_then(Value::as_u64).unwrap() >= 1);

    // Unknown graphs are rejected up front, not queued.
    assert!(matches!(
        engine.submit(spec("missing", None)),
        Err(SubmitError::UnknownGraph(_))
    ));

    engine.cancel(running);
    engine.cancel(queued);
    engine.shutdown();
}
