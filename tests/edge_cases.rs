//! Edge-case and failure-mode tests: degenerate graphs, unsatisfiable
//! constraints, zero-sized groups, and ε extremes must all degrade
//! gracefully (empty results, never panics).

use fairsqg::prelude::*;
use fairsqg::query::TemplateBuilder;

/// A minimal graph: 6 candidates (4/2 across groups), no edges at all.
fn edgeless_graph() -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..6i64 {
        b.add_named_node(
            "candidate",
            &[
                ("g", AttrValue::Int(i64::from(i % 3 == 0))),
                ("score", AttrValue::Int(i)),
            ],
        );
    }
    b.finish()
}

fn single_node_template(g: &Graph) -> fairsqg::query::QueryTemplate {
    let s = g.schema();
    let mut tb = TemplateBuilder::new();
    let u0 = tb.node(s.find_node_label("candidate").unwrap());
    tb.range_literal(u0, s.find_attr("score").unwrap(), CmpOp::Ge);
    tb.finish(u0).unwrap()
}

fn groups(g: &Graph) -> GroupSet {
    let attr = g.schema().find_attr("g").unwrap();
    GroupSet::by_attribute(g, attr, &[AttrValue::Int(0), AttrValue::Int(1)])
}

#[test]
fn edgeless_graph_single_node_template_works() {
    let g = edgeless_graph();
    let t = single_node_template(&g);
    let gr = groups(&g);
    let spec = CoverageSpec::equal_opportunity(2, 1);
    let fair = FairSqg::new(&g).epsilon(0.3);
    for algo in [Algorithm::EnumQGen, Algorithm::RfQGen, Algorithm::BiQGen] {
        let out = fair.generate(&t, &gr, &spec, algo);
        assert!(!out.entries.is_empty());
        // Single-node queries: matches = literal-filtered candidates.
        for e in &out.entries {
            assert!(e.result.matches.len() <= 6);
            assert!(e.result.feasible);
        }
    }
}

#[test]
fn unsatisfiable_coverage_yields_empty_sets_everywhere() {
    let g = edgeless_graph();
    let t = single_node_template(&g);
    let gr = groups(&g);
    // Demands more than either group's population.
    let spec = CoverageSpec::equal_opportunity(2, 100);
    let fair = FairSqg::new(&g).epsilon(0.3);
    for algo in [
        Algorithm::EnumQGen,
        Algorithm::Kungs,
        Algorithm::Cbm,
        Algorithm::RfQGen,
        Algorithm::BiQGen,
    ] {
        let out = fair.generate(&t, &gr, &spec, algo);
        assert!(out.entries.is_empty(), "{algo:?} fabricated a result");
    }
    // Online generation over the same space also stays empty.
    let domains = fair.domains_for(&t);
    let cfg = Configuration::new(
        &g,
        &t,
        &domains,
        &gr,
        &spec,
        0.3,
        DiversityConfig::default(),
    );
    let stream = ShuffledStream::new(&domains, 1);
    let (out, _) = online_qgen(
        cfg,
        OnlineOptions {
            k: 3,
            window: 4,
            initial_eps: 0.1,
        },
        stream,
    );
    assert!(out.entries.is_empty());
}

#[test]
fn zero_coverage_constraints_are_trivially_feasible() {
    let g = edgeless_graph();
    let t = single_node_template(&g);
    let gr = groups(&g);
    let spec = CoverageSpec::equal_opportunity(2, 0);
    let fair = FairSqg::new(&g).epsilon(0.3);
    let out = fair.generate(&t, &gr, &spec, Algorithm::BiQGen);
    // C = 0 ⇒ f = 0 for every instance; diversity alone drives the front.
    assert!(!out.entries.is_empty());
    for e in &out.entries {
        assert_eq!(e.result.objectives.fcov, 0.0);
        assert!(e.result.feasible);
    }
}

#[test]
fn extreme_epsilons_behave() {
    let g = edgeless_graph();
    let t = single_node_template(&g);
    let gr = groups(&g);
    let spec = CoverageSpec::equal_opportunity(2, 1);

    // Huge ε: one box swallows everything — at most a couple of entries.
    let coarse = FairSqg::new(&g)
        .epsilon(10.0)
        .generate(&t, &gr, &spec, Algorithm::EnumQGen);
    assert!(coarse.entries.len() <= 2, "coarse set too large");

    // Tiny ε: the archive approximates the exact Pareto front.
    let fine = FairSqg::new(&g)
        .epsilon(1e-6)
        .generate(&t, &gr, &spec, Algorithm::EnumQGen);
    let exact = FairSqg::new(&g)
        .epsilon(1e-6)
        .generate(&t, &gr, &spec, Algorithm::Kungs);
    assert_eq!(fine.entries.len(), exact.entries.len());
}

#[test]
fn groups_outside_the_output_label_never_match() {
    // Groups defined over a label the template never outputs: counts are
    // all zero, so any c_i > 0 is unsatisfiable and c_i = 0 is trivial.
    let mut b = GraphBuilder::new();
    for i in 0..4i64 {
        b.add_named_node("candidate", &[("score", AttrValue::Int(i))]);
    }
    let other = (0..4)
        .map(|i| b.add_named_node("bystander", &[("g", AttrValue::Int(i % 2))]))
        .collect::<Vec<_>>();
    let g = b.finish();
    let _ = other;
    let t = single_node_template(&g);
    let attr = g.schema().find_attr("g").unwrap();
    let gr = GroupSet::by_attribute(&g, attr, &[AttrValue::Int(0), AttrValue::Int(1)]);

    let fair = FairSqg::new(&g).epsilon(0.3);
    let out = fair.generate(
        &t,
        &gr,
        &CoverageSpec::equal_opportunity(2, 1),
        Algorithm::BiQGen,
    );
    assert!(out.entries.is_empty());
    let trivial = fair.generate(
        &t,
        &gr,
        &CoverageSpec::equal_opportunity(2, 0),
        Algorithm::BiQGen,
    );
    assert!(!trivial.entries.is_empty());
}
