//! End-to-end integration tests: full pipelines over all three synthetic
//! datasets, cross-algorithm agreement, and determinism.

use fairsqg::datagen::{workload, CoverageMode, DatasetKind, WorkloadParams};
use fairsqg::prelude::*;

fn small_workload(kind: DatasetKind) -> fairsqg::datagen::Workload {
    let params = WorkloadParams {
        max_values_per_range_var: 6,
        coverage: CoverageMode::AutoFraction(0.5),
        ..WorkloadParams::default()
    };
    workload(kind, 400, &params)
}

fn cfg(w: &fairsqg::datagen::Workload, eps: f64) -> Configuration<'_> {
    Configuration::new(
        &w.graph,
        &w.template,
        &w.domains,
        &w.groups,
        &w.spec,
        eps,
        DiversityConfig {
            pair_cap: 0, // exact diversity for reproducible cross-checks
            ..DiversityConfig::default()
        },
    )
}

#[test]
fn all_datasets_produce_nonempty_valid_sets() {
    for kind in [DatasetKind::Dbp, DatasetKind::Lki, DatasetKind::Cite] {
        let w = small_workload(kind);
        let c = cfg(&w, 0.1);
        for (name, out) in [
            ("enum", enum_qgen(c, false)),
            ("kungs", kungs(c)),
            ("rf", rfqgen(c, RfQGenOptions::default())),
            ("bi", biqgen(c, BiQGenOptions::default())),
        ] {
            assert!(
                !out.entries.is_empty(),
                "{}/{name}: empty result set",
                w.name
            );
            for e in &out.entries {
                assert!(e.result.feasible, "{}/{name}: infeasible member", w.name);
                assert!(
                    is_feasible(&e.result.counts, &w.spec),
                    "{}/{name}: member violates coverage",
                    w.name
                );
            }
        }
    }
}

#[test]
fn approximate_algorithms_cover_the_exact_front() {
    // Every exact-Pareto point must be (shifted-)ε-dominated by each
    // approximate algorithm's output — the defining property of an
    // ε-Pareto set, checked against the strongest possible universe.
    for kind in [DatasetKind::Dbp, DatasetKind::Lki, DatasetKind::Cite] {
        let w = small_workload(kind);
        let eps = 0.25;
        let c = cfg(&w, eps);
        let front = kungs(c);
        let front_objs = front.objectives();
        for (name, out) in [
            ("enum", enum_qgen(c, false)),
            ("rf", rfqgen(c, RfQGenOptions::default())),
            ("bi", biqgen(c, BiQGenOptions::default())),
        ] {
            let factor = 1.0 + eps;
            for fo in &front_objs {
                let covered = out.entries.iter().any(|e| {
                    let o = e.objectives();
                    factor * (1.0 + o.delta) >= 1.0 + fo.delta
                        && factor * (1.0 + o.fcov) >= 1.0 + fo.fcov
                });
                assert!(
                    covered,
                    "{}/{name}: exact front point {fo:?} not ε-covered",
                    w.name
                );
            }
        }
    }
}

#[test]
fn generation_is_deterministic() {
    let w = small_workload(DatasetKind::Lki);
    let c = cfg(&w, 0.1);
    let key = |g: &Generated| -> Vec<(Vec<u16>, u64, u64)> {
        let mut v: Vec<_> = g
            .entries
            .iter()
            .map(|e| {
                (
                    e.inst.indices().to_vec(),
                    e.objectives().delta.to_bits(),
                    e.objectives().fcov.to_bits(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        key(&rfqgen(c, RfQGenOptions::default())),
        key(&rfqgen(c, RfQGenOptions::default()))
    );
    assert_eq!(
        key(&biqgen(c, BiQGenOptions::default())),
        key(&biqgen(c, BiQGenOptions::default()))
    );
}

#[test]
fn facade_matches_direct_invocation() {
    let w = small_workload(DatasetKind::Dbp);
    let fair = FairSqg::new(&w.graph)
        .epsilon(0.1)
        .diversity(DiversityConfig {
            pair_cap: 0,
            ..DiversityConfig::default()
        })
        .domain_config(DomainConfig {
            max_values_per_range_var: 6,
        });
    let via_facade = fair.generate(&w.template, &w.groups, &w.spec, Algorithm::BiQGen);
    // The facade rebuilds domains from the same graph/template/config, so
    // results must agree with the direct call.
    let direct = biqgen(cfg(&w, 0.1), BiQGenOptions::default());
    let objs = |g: &Generated| {
        let mut v: Vec<(u64, u64)> = g
            .entries
            .iter()
            .map(|e| {
                (
                    e.objectives().delta.to_bits(),
                    e.objectives().fcov.to_bits(),
                )
            })
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(objs(&via_facade), objs(&direct));
}

#[test]
fn size_bound_of_theorem_2() {
    for kind in [DatasetKind::Dbp, DatasetKind::Cite] {
        let w = small_workload(kind);
        for &eps in &[0.1f64, 0.3, 0.6] {
            let c = cfg(&w, eps);
            let out = enum_qgen(c, false);
            let delta_max = w.graph.label_population(w.template.output_label()) as f64;
            let f_max = w.spec.total() as f64;
            let bound_delta = ((1.0 + delta_max).ln() / (1.0 + eps).ln()).ceil() as usize + 1;
            let bound_f = ((1.0 + f_max).ln() / (1.0 + eps).ln()).ceil() as usize + 1;
            let bound = bound_delta.min(bound_f);
            assert!(
                out.entries.len() <= bound,
                "{}: |set| = {} exceeds Theorem 2 bound {} at eps {eps}",
                w.name,
                out.entries.len(),
                bound
            );
        }
    }
}

#[test]
fn online_generation_end_to_end() {
    let w = small_workload(DatasetKind::Cite);
    let c = cfg(&w, 0.1);
    let stream = ShuffledStream::new(&w.domains, 77);
    let (out, trace) = online_qgen(
        c,
        OnlineOptions {
            k: 5,
            window: 10,
            initial_eps: 0.02,
        },
        stream,
    );
    assert!(out.entries.len() <= 5);
    assert!(!trace.is_empty());
    assert_eq!(trace.last().unwrap().t, w.domains.instance_space_size());
    // ε never shrinks along the trace.
    for win in trace.windows(2) {
        assert!(win[1].eps >= win[0].eps);
    }
}

#[test]
fn facade_runs_every_algorithm_variant() {
    let w = small_workload(DatasetKind::Cite);
    let fair = FairSqg::new(&w.graph)
        .epsilon(0.2)
        .domain_config(DomainConfig {
            max_values_per_range_var: 6,
        });
    for algo in [
        Algorithm::EnumQGen,
        Algorithm::Kungs,
        Algorithm::Cbm,
        Algorithm::RfQGen,
        Algorithm::BiQGen,
    ] {
        let out = fair.generate(&w.template, &w.groups, &w.spec, algo);
        assert!(!out.entries.is_empty(), "{algo:?} returned nothing");
    }
}

#[test]
fn facade_output_restriction_flows_through() {
    let w = small_workload(DatasetKind::Lki);
    let pool: Vec<NodeId> = w
        .graph
        .nodes_with_label(w.template.output_label())
        .iter()
        .copied()
        .filter(|v| v.index() % 2 == 0)
        .collect();
    // Coverage must be attainable within the halved population.
    let spec = CoverageSpec::equal_opportunity(w.groups.len(), 1);
    let fair = FairSqg::new(&w.graph)
        .epsilon(0.2)
        .restrict_output(pool.clone());
    let out = fair.generate(&w.template, &w.groups, &spec, Algorithm::BiQGen);
    for e in &out.entries {
        assert!(e
            .result
            .matches
            .iter()
            .all(|m| pool.binary_search(m).is_ok()));
    }
}
