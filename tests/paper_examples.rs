//! Integration tests reconstructing the paper's running examples
//! (Examples 1–5 and Fig. 1) on an explicit miniature graph.

use fairsqg::prelude::*;
use fairsqg::query::InstanceLattice;

/// The Fig. 1 scenario: directors recommended by experienced users who
/// work at organizations of varying size, with gender groups.
struct Fig1 {
    graph: Graph,
    template: QueryTemplate,
}

fn fig1() -> Fig1 {
    let mut b = GraphBuilder::new();
    // Five directors; v1..v3 male-ish split per Example 3's match sets.
    let d: Vec<NodeId> = (0..5)
        .map(|i| {
            b.add_named_node(
                "director",
                &[
                    ("gender", AttrValue::Int(i64::from(i % 2 == 0))),
                    ("major", AttrValue::Int(i as i64)),
                ],
            )
        })
        .collect();
    // Recommenders with varying experience.
    let u_a = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(12))]);
    let u_b = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(10))]);
    let u_c = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(6))]);
    // Organizations of different sizes.
    let o_big = b.add_named_node("org", &[("employees", AttrValue::Int(1500))]);
    let o_mid = b.add_named_node("org", &[("employees", AttrValue::Int(500))]);
    let o_small = b.add_named_node("org", &[("employees", AttrValue::Int(300))]);
    for (u, o) in [(u_a, o_big), (u_b, o_mid), (u_c, o_small)] {
        b.add_named_edge(u, o, "worksAt");
    }
    b.add_named_edge(u_a, d[0], "recommend");
    b.add_named_edge(u_a, d[1], "recommend");
    b.add_named_edge(u_b, d[1], "recommend");
    b.add_named_edge(u_b, d[2], "recommend");
    b.add_named_edge(u_c, d[2], "recommend");
    b.add_named_edge(u_c, d[3], "recommend");
    b.add_named_edge(u_c, d[4], "recommend");
    let graph = b.finish();

    // Template Q(u_o) of Fig. 1 (simplified to one recommender chain plus
    // an optional second recommender, as in Example 3's variables).
    let s = graph.schema();
    let mut tb = TemplateBuilder::new();
    let q0 = tb.node(s.find_node_label("director").unwrap());
    let q1 = tb.node(s.find_node_label("user").unwrap());
    let q2 = tb.node(s.find_node_label("org").unwrap());
    let q3 = tb.node(s.find_node_label("user").unwrap());
    tb.edge(q1, q0, s.find_edge_label("recommend").unwrap());
    tb.edge(q1, q2, s.find_edge_label("worksAt").unwrap());
    tb.optional_edge(q3, q0, s.find_edge_label("recommend").unwrap());
    tb.range_literal(q1, s.find_attr("yearsOfExp").unwrap(), CmpOp::Ge);
    tb.range_literal(q2, s.find_attr("employees").unwrap(), CmpOp::Ge);
    let template = tb.finish(q0).unwrap();

    Fig1 { graph, template }
}

#[test]
fn relaxing_the_employee_threshold_broadens_candidates() {
    // The paper's q2 vs q1: lowering the employees bound (1000 -> 500)
    // admits candidates recommended from smaller businesses.
    let fx = fig1();
    let s = fx.graph.schema();
    let fair = FairSqg::new(&fx.graph);
    let domains = fair.domains_for(&fx.template);

    // employees >= 1500 (most refined value of x1) vs >= 500.
    let employees_var = 1; // second range literal
    let dom = domains.domain(employees_var);
    let strict_idx = (dom.len() - 1) as u16;
    // Find the index binding 500.
    let mid_idx = (1..dom.len())
        .find(|&i| {
            matches!(
                dom.values[i],
                fairsqg::query::DomainValue::Const(AttrValue::Int(500))
            )
        })
        .unwrap() as u16;

    let make = |emp_idx: u16| {
        let mut idx = vec![0u16; domains.var_count()];
        idx[employees_var] = emp_idx;
        Instantiation::new(idx)
    };
    let q_strict = ConcreteQuery::materialize(&fx.template, &domains, &make(strict_idx));
    let q_mid = ConcreteQuery::materialize(&fx.template, &domains, &make(mid_idx));
    let m_strict = fairsqg::matcher::match_output_set(&fx.graph, &q_strict, Default::default());
    let m_mid = fairsqg::matcher::match_output_set(&fx.graph, &q_mid, Default::default());
    assert!(
        m_mid.len() > m_strict.len(),
        "relaxation must broaden the answer ({} vs {})",
        m_mid.len(),
        m_strict.len()
    );
    assert!(m_strict.iter().all(|v| m_mid.contains(v)));
    let _ = s;
}

#[test]
fn example5_eps_pareto_from_paper_coordinates() {
    // Example 4/5 verbatim: instances with (δ, f) = q1 (0,1), q2 (1,1),
    // q3 (0.75,2), q4 (0.5,3); Pareto set {q2,q3,q4}; with ε = 0.3 the
    // boxed archive keeps a representative subset that still ε-dominates
    // everything.
    let objs = [
        Objectives::new(0.0, 1.0),  // q1
        Objectives::new(1.0, 1.0),  // q2
        Objectives::new(0.75, 2.0), // q3
        Objectives::new(0.5, 3.0),  // q4
    ];
    // Exact Pareto set: q2, q3, q4 (q1 dominated).
    let front = kung_pareto(&objs);
    assert_eq!(front, vec![1, 2, 3]);

    // ε-archive behavior at ε = 0.3.
    let eps = 0.3;
    let boxes: Vec<_> = objs.iter().map(|o| o.boxed(eps)).collect();
    // q3's box dominates-or-equals q2's box (the paper removes q2).
    assert!(boxes[2].dominates_or_eq(&boxes[1]));
    // q3 and q4 are box-incomparable (both stay).
    assert!(!boxes[2].dominates(&boxes[3]) && !boxes[3].dominates(&boxes[2]));
}

#[test]
fn full_generation_on_fig1_graph() {
    let fx = fig1();
    let s = fx.graph.schema();
    let gender = s.find_attr("gender").unwrap();
    let groups = GroupSet::by_attribute(&fx.graph, gender, &[AttrValue::Int(0), AttrValue::Int(1)]);
    let spec = CoverageSpec::equal_opportunity(2, 1);

    let fair = FairSqg::new(&fx.graph)
        .epsilon(0.3)
        .diversity(DiversityConfig {
            pair_cap: 0,
            ..DiversityConfig::default()
        });
    let bi = fair.generate(&fx.template, &groups, &spec, Algorithm::BiQGen);
    let exact = fair.generate(&fx.template, &groups, &spec, Algorithm::Kungs);
    assert!(!bi.entries.is_empty());
    assert!(!exact.entries.is_empty());
    assert!(bi.entries.len() <= exact.entries.len().max(1) + 2);

    // Every member covers one male and one female director.
    for e in &bi.entries {
        assert!(e.result.counts.iter().all(|&c| c >= 1));
    }
}

#[test]
fn lattice_of_fig1_template_has_expected_shape() {
    let fx = fig1();
    let fair = FairSqg::new(&fx.graph);
    let domains = fair.domains_for(&fx.template);
    // x0: yearsOfExp over {6, 10, 12} + wildcard = 4 values;
    // x1: employees over {300, 500, 1500} + wildcard = 4 values;
    // x2: edge on/off = 2 values.
    assert_eq!(domains.var_count(), 3);
    assert_eq!(domains.instance_space_size(), 4 * 4 * 2);
    let lat = InstanceLattice::new(&domains);
    assert_eq!(lat.enumerate().len(), 32);
}
