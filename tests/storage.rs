//! Storage integration: the binary container must be a drop-in
//! replacement for TSV text end to end — same graphs through the full
//! accessor surface on the existing presets, bit-identical generation
//! archives through the service, and registry stats that tell the two
//! load paths apart.

use fairsqg::datagen::{citations_graph, movies_graph, social_graph};
use fairsqg::datagen::{CitationsConfig, MoviesConfig, SocialConfig};
use fairsqg::graph::{AttrId, Graph, LabelId};
use fairsqg::service::{
    AlgoKind, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, LoadKind,
};
use fairsqg::store::{convert_tsv_path, open_path, write_graph, write_graph_to_path};
use fairsqg::wire::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TEMPLATE: &str = "node u0 : director\nnode u1 : user\nedge u1 -recommend-> u0\n\
                        where u1.yearsOfExp >= ?\noutput u0\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fairsqg-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Semantic equality through the public accessor surface (nodes, tuples,
/// adjacency, label index, postings, domains, shards).
fn assert_same_graph(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for v in a.nodes() {
        assert_eq!(a.label(v), b.label(v));
        assert_eq!(a.tuple(v), b.tuple(v));
        assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        assert_eq!(a.in_neighbors(v), b.in_neighbors(v));
    }
    for l in 0..a.schema().node_label_count() {
        let l = LabelId(l as u16);
        assert_eq!(a.nodes_with_label(l), b.nodes_with_label(l));
        for at in 0..a.schema().attr_count() {
            let at = AttrId(at as u16);
            assert_eq!(a.domains().for_label(l, at), b.domains().for_label(l, at));
            assert_eq!(a.partitions().shards(l, at), b.partitions().shards(l, at));
            match (
                a.attr_index().postings(l, at),
                b.attr_index().postings(l, at),
            ) {
                (Some(pa), Some(pb)) => assert_eq!(pa.entries(), pb.entries()),
                (None, None) => {}
                other => panic!("postings presence mismatch: {other:?}"),
            }
        }
    }
}

#[test]
fn existing_presets_survive_the_container_roundtrip() {
    let dir = temp_dir("presets");
    let presets: Vec<(&str, Graph)> = vec![
        (
            "dbp",
            movies_graph(MoviesConfig {
                movies: 400,
                seed: 21,
            }),
        ),
        (
            "lki",
            social_graph(SocialConfig {
                directors: 300,
                majority_share: 0.65,
                seed: 22,
            }),
        ),
        (
            "cite",
            citations_graph(CitationsConfig {
                papers: 400,
                seed: 23,
            }),
        ),
    ];
    for (name, graph) in presets {
        // In-memory write path and the streaming TSV converter must emit
        // the same container bytes.
        let tsv = dir.join(format!("{name}.tsv"));
        let fsg = dir.join(format!("{name}.fsg"));
        {
            let mut text = Vec::new();
            fairsqg::graph::write_tsv(&graph, &mut text).unwrap();
            std::fs::write(&tsv, text).unwrap();
        }
        convert_tsv_path(&tsv, &fsg).unwrap();
        let converted = std::fs::read(&fsg).unwrap();
        let mut direct = Vec::new();
        // The TSV text is the source of truth for both paths: interning
        // order follows the file, so compare against the parsed graph.
        let parsed = {
            let file = std::fs::File::open(&tsv).unwrap();
            fairsqg::graph::read_tsv(std::io::BufReader::new(file)).unwrap()
        };
        write_graph(&parsed, &mut direct).unwrap();
        // Identical streams, except the header digest: the streaming
        // converter patches the whole-file digest into the finished file,
        // while the in-memory writer targets non-seekable sinks and
        // leaves the "absent" zero placeholder.
        let off = fairsqg::store::format::DIGEST_OFFSET;
        assert_eq!(
            direct[off..off + 8],
            [0u8; 8],
            "{name}: stream writer must leave a zero digest placeholder"
        );
        assert_ne!(
            converted[off..off + 8],
            [0u8; 8],
            "{name}: converter must stamp a digest"
        );
        let mut unstamped = converted.clone();
        unstamped[off..off + 8].fill(0);
        assert_eq!(direct, unstamped, "{name}: converter bytes diverge");

        let loaded = open_path(&fsg).unwrap();
        assert!(loaded.mapped, "{name}: expected an mmap load");
        assert_same_graph(&parsed, &loaded.graph);
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn run_jobs(registry: Arc<GraphRegistry>, lambdas: &[f64]) -> Vec<String> {
    let engine = Engine::start(
        registry,
        EngineConfig {
            workers: 1,
            cache_entries: 0,
            warm_state: false,
            coalesce: false,
            ..EngineConfig::default()
        },
    );
    let archives = lambdas
        .iter()
        .map(|&lambda| {
            let id = engine
                .submit(JobSpec {
                    graph: "g".into(),
                    template: TEMPLATE.into(),
                    group_attr: "gender".into(),
                    cover: 4,
                    algo: AlgoKind::BiQGen,
                    threads: 1,
                    eps: 0.05,
                    lambda,
                    deadline_ms: None,
                    budget: fairsqg::algo::MatchBudget::UNLIMITED,
                    request_key: None,
                    priority: fairsqg::service::DEFAULT_PRIORITY,
                    client: None,
                    subscribe: false,
                })
                .unwrap();
            let result = loop {
                match engine.status(id).unwrap().state {
                    JobState::Done => break engine.result(id).unwrap(),
                    JobState::Failed | JobState::Cancelled => panic!("job did not complete"),
                    _ => std::thread::sleep(Duration::from_millis(1)),
                }
            };
            // Entries + ε + truncation describe the archive; stats differ
            // legitimately between runs.
            format!(
                "{};{};{}",
                fairsqg::wire::to_string_pretty(result.get("eps").unwrap()),
                fairsqg::wire::to_string_pretty(result.get("truncated").unwrap()),
                fairsqg::wire::to_string_pretty(result.get("entries").unwrap()),
            )
        })
        .collect();
    engine.shutdown();
    archives
}

#[test]
fn generation_archives_are_bit_identical_across_load_paths() {
    let dir = temp_dir("archives");
    let graph = social_graph(SocialConfig {
        directors: 250,
        majority_share: 0.65,
        seed: 31,
    });
    let tsv = dir.join("g.tsv");
    let fsg = dir.join("g.fsg");
    {
        let mut text = Vec::new();
        fairsqg::graph::write_tsv(&graph, &mut text).unwrap();
        std::fs::write(&tsv, text).unwrap();
    }
    convert_tsv_path(&tsv, &fsg).unwrap();

    let lambdas = [0.3, 0.5, 0.8];
    let via_tsv = {
        let registry = Arc::new(GraphRegistry::new());
        let (_, kind) = registry.load_path("g", tsv.to_str().unwrap()).unwrap();
        assert_eq!(kind, LoadKind::Parse);
        run_jobs(registry, &lambdas)
    };
    let via_mmap = {
        let registry = Arc::new(GraphRegistry::new());
        let (_, kind) = registry.load_path("g", fsg.to_str().unwrap()).unwrap();
        assert_eq!(kind, LoadKind::MmapSwap);
        run_jobs(registry, &lambdas)
    };
    assert_eq!(via_tsv, via_mmap);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_stats_distinguish_mmap_swap_from_parse() {
    let dir = temp_dir("stats");
    let graph = social_graph(SocialConfig {
        directors: 120,
        majority_share: 0.65,
        seed: 41,
    });
    let tsv = dir.join("g.tsv");
    let fsg = dir.join("g.fsg");
    {
        let mut text = Vec::new();
        fairsqg::graph::write_tsv(&graph, &mut text).unwrap();
        std::fs::write(&tsv, text).unwrap();
    }
    write_graph_to_path(&graph, &fsg).unwrap();

    let registry = Arc::new(GraphRegistry::new());
    registry.load_path("g", tsv.to_str().unwrap()).unwrap();
    let after_parse = registry.stats();
    assert_eq!(
        (after_parse.parse_loads, after_parse.mmap_loads),
        (1, 0),
        "a TSV load is a parse"
    );
    assert_eq!(after_parse.mapped_bytes, 0);

    // Reload the same name from the container: epoch bumps, the swap is
    // counted separately, and the entry's bytes move to the mapping.
    let (epoch, kind) = registry.load_path("g", fsg.to_str().unwrap()).unwrap();
    assert_eq!((epoch, kind), (2, LoadKind::MmapSwap));
    let after_swap = registry.stats();
    assert_eq!((after_swap.parse_loads, after_swap.mmap_loads), (1, 1));
    assert!(after_swap.mapped_bytes > 0);
    assert!(after_swap.heap_bytes < after_parse.heap_bytes);

    // The same split is visible over the engine's stats surface.
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let stats = engine.stats_value();
    let block = stats.get("registry").expect("stats has a registry block");
    assert_eq!(block.get("graphs").and_then(Value::as_u64), Some(1));
    assert_eq!(block.get("parse_loads").and_then(Value::as_u64), Some(1));
    assert_eq!(block.get("mmap_loads").and_then(Value::as_u64), Some(1));
    assert!(block.get("mapped_bytes").and_then(Value::as_u64).unwrap() > 0);
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
