//! Streaming-subscription tests against the multiplexed server: the
//! concatenation of delta frames must reconstruct the Pareto archive
//! bit-identically to the non-streaming `result` op — including for
//! deadline-truncated jobs — and the demultiplexing client must turn
//! protocol violations into typed errors and drop stale deltas.

#![cfg(unix)]

use fairsqg::datagen::{social_graph, SocialConfig};
use fairsqg::service::{
    spawn_mux, AlgoKind, ClientError, Engine, EngineConfig, GraphRegistry, JobSpec, MuxClient,
};
use fairsqg::wire::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const TEMPLATE: &str = "\
    node u0 : director\n\
    node u1 : user\n\
    edge u1 -recommend-> u0\n\
    where u1.yearsOfExp >= ?\n\
    output u0\n";

fn spec(graph: &str, deadline_ms: Option<u64>) -> JobSpec {
    JobSpec {
        graph: graph.into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 5,
        algo: AlgoKind::EnumQGen,
        threads: 0,
        eps: 0.05,
        lambda: 0.5,
        deadline_ms,
        budget: fairsqg::algo::MatchBudget::UNLIMITED,
        request_key: None,
        priority: fairsqg::service::DEFAULT_PRIORITY,
        client: None,
        subscribe: false,
    }
}

fn serve(directors: usize, seed: u64) -> (String, Arc<Engine>) {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert(
        "g",
        social_graph(SocialConfig {
            directors,
            majority_share: 0.6,
            seed,
        }),
    );
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: 32,
            cache_entries: 32,
            default_deadline: None,
            ..EngineConfig::default()
        },
    ));
    let (addr, _stop, _handle) = spawn_mux("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    (addr.to_string(), engine)
}

/// The reconstruction contract: applying every delta frame in order and
/// sorting by the settled frame's `order` list yields a value whose
/// canonical serialization is byte-identical to the `result` op's body.
#[test]
fn streamed_deltas_reconstruct_result_bit_identically() {
    let (addr, _engine) = serve(120, 7);
    let client = MuxClient::connect(&addr).unwrap();

    let sub = client.submit_streaming(&spec("g", None)).unwrap();
    let id = sub.id;
    let streamed = sub.wait(Duration::from_secs(120)).unwrap();
    assert_eq!(streamed.state, "done", "err: {:?}", streamed.error_message);
    assert!(!streamed.lossy, "local test stream must not shed deltas");
    let reconstructed = streamed.result.expect("lossless done stream has a result");

    let fetched = client.result(id).unwrap();
    assert_eq!(
        reconstructed.to_string(),
        fetched.to_string(),
        "delta reconstruction must be bit-identical to the result op"
    );
    assert!(
        !reconstructed
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "a completed run must stream suggestions"
    );
}

/// Deadline truncation: the job settles `done` + `truncated` with a
/// partial archive, and the stream still reconstructs it exactly (the
/// settlement catch-up delta covers whatever the cutoff left unsent).
#[test]
fn truncated_stream_reconstructs_partial_archive() {
    let (addr, _engine) = serve(400, 2);
    let client = MuxClient::connect(&addr).unwrap();

    let sub = client.submit_streaming(&spec("g", Some(0))).unwrap();
    let id = sub.id;
    let streamed = sub.wait(Duration::from_secs(120)).unwrap();
    assert_eq!(streamed.state, "done");
    assert!(streamed.truncated, "a zero deadline must truncate");
    let reconstructed = streamed.result.expect("truncated stream still settles");
    assert_eq!(
        reconstructed.get("truncated").and_then(Value::as_bool),
        Some(true)
    );

    let fetched = client.result(id).unwrap();
    assert_eq!(reconstructed.to_string(), fetched.to_string());
}

/// A cache-hit replay streams the whole archive as one settlement
/// catch-up delta and still reconstructs bit-identically.
#[test]
fn cached_replay_streams_identical_archive() {
    let (addr, _engine) = serve(100, 3);
    let client = MuxClient::connect(&addr).unwrap();

    let first = client.submit_streaming(&spec("g", None)).unwrap();
    let first = first.wait(Duration::from_secs(120)).unwrap();
    assert_eq!(first.state, "done");

    let replay = client.submit_streaming(&spec("g", None)).unwrap();
    let id = replay.id;
    let replay = replay.wait(Duration::from_secs(120)).unwrap();
    assert_eq!(replay.state, "done");
    assert!(
        replay.from_cache,
        "identical resubmission must hit the cache"
    );
    let reconstructed = replay.result.expect("cached stream has a result");
    assert_eq!(
        reconstructed.to_string(),
        client.result(id).unwrap().to_string()
    );
}

/// Many threads multiplex one connection: every request gets its own
/// reply, every subscription settles, ids never cross wires.
#[test]
fn concurrent_requests_share_one_connection() {
    let (addr, _engine) = serve(80, 11);
    let client = Arc::new(MuxClient::connect(&addr).unwrap());

    let mut threads = Vec::new();
    for t in 0..8u64 {
        let client = Arc::clone(&client);
        threads.push(std::thread::spawn(move || {
            let mut s = spec("g", None);
            // Distinct eps per thread → distinct jobs, no coalescing.
            s.eps = 0.05 + (t as f64) * 0.01;
            let sub = client.submit_streaming(&s).unwrap();
            let id = sub.id;
            let out = sub.wait(Duration::from_secs(120)).unwrap();
            assert_eq!(out.state, "done");
            assert_eq!(out.id, id);
            let reconstructed = out.result.expect("lossless stream");
            assert_eq!(
                reconstructed.to_string(),
                client.result(id).unwrap().to_string()
            );
            id
        }));
    }
    let ids: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "job ids crossed wires: {ids:?}");
}

/// The `metrics` op returns Prometheus text exposition with the stats
/// families the docs promise.
#[test]
fn metrics_op_exposes_engine_stats() {
    let (addr, _engine) = serve(60, 5);
    let client = MuxClient::connect(&addr).unwrap();
    let sub = client.submit_streaming(&spec("g", None)).unwrap();
    sub.wait(Duration::from_secs(120)).unwrap();

    let text = client.metrics().unwrap();
    for family in [
        "fairsqg_completed",
        "fairsqg_result_cache_",
        "fairsqg_streaming_deltas",
        "fairsqg_watchdog_",
        "fairsqg_registry_",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(family)),
            "metrics text missing family {family}:\n{text}"
        );
    }
}

/// A literal `GET /metrics` line gets a plain HTTP response — no wire
/// protocol needed for a scraper.
#[test]
fn http_metrics_scrape() {
    let (addr, _engine) = serve(60, 6);
    let mut sock = TcpStream::connect(&addr).unwrap();
    sock.write_all(b"GET /metrics HTTP/1.0\r\n").unwrap();
    let mut response = String::new();
    sock.take(1 << 20).read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("text/plain"), "{response}");
    assert!(response.contains("fairsqg_workers"), "{response}");
}

/// A reply with an unknown `rid` is a typed [`ClientError::UnexpectedFrame`]
/// — the connection is desynchronized, not silently wrong.
#[test]
fn unknown_rid_is_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(sock.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        // Echo a response correlated to a rid nobody asked for.
        sock.write_all(b"{\"ok\":true,\"pong\":true,\"rid\":424242}\n")
            .unwrap();
        sock
    });
    let client = MuxClient::connect(&addr.to_string()).unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, ClientError::UnexpectedFrame(_)),
        "want UnexpectedFrame, got {err:?}"
    );
    // The poison is sticky: later calls fail the same way without I/O.
    let err = client.stats().unwrap_err();
    assert!(matches!(err, ClientError::UnexpectedFrame(_)));
    drop(fake.join().unwrap());
}

/// Deltas that arrive after their subscription settled are dropped and
/// counted, not treated as protocol violations.
#[test]
fn stale_deltas_after_settle_are_dropped() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // the streaming submit
        let rid = fairsqg::wire::parse(&line)
            .unwrap()
            .get("rid")
            .and_then(Value::as_u64)
            .unwrap();
        let frames = format!(
            "{{\"ok\":true,\"id\":1,\"state\":\"queued\",\"rid\":{rid}}}\n\
             {{\"event\":\"settled\",\"id\":1,\"state\":\"failed\",\"truncated\":false,\
             \"from_cache\":false,\"lossy\":false,\"error_message\":\"boom\",\"rid\":{rid}}}\n\
             {{\"event\":\"delta\",\"id\":1,\"version\":9,\"added\":[],\"removed\":[],\"rid\":{rid}}}\n"
        );
        sock.write_all(frames.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap(); // the trailing ping
        let rid = fairsqg::wire::parse(&line)
            .unwrap()
            .get("rid")
            .and_then(Value::as_u64)
            .unwrap();
        sock.write_all(format!("{{\"ok\":true,\"pong\":true,\"rid\":{rid}}}\n").as_bytes())
            .unwrap();
        sock
    });
    let client = MuxClient::connect(&addr.to_string()).unwrap();
    let sub = client.submit_streaming(&spec("g", None)).unwrap();
    let out = sub.wait(Duration::from_secs(30)).unwrap();
    assert_eq!(out.state, "failed");
    assert_eq!(out.error_message.as_deref(), Some("boom"));
    // The ping reply is ordered after the stale delta on the stream, so
    // once it returns the delta has been routed (and dropped).
    client.ping().unwrap();
    assert_eq!(client.stale_deltas(), 1);
    drop(fake.join().unwrap());
}

/// A multiplexed shutdown op stops the server loop and drains the engine.
#[test]
fn mux_shutdown_drains() {
    let (addr, engine) = serve(60, 9);
    let client = MuxClient::connect(&addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    // The engine refuses new work once the server loop winds it down.
    // Probes submitted before the loop breaks may still be accepted (or
    // coalesced), so use a distinct spec each time and wait for the
    // first refusal.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut probe = 0u64;
    loop {
        // eps is part of the cache fingerprint, so every probe is a new
        // job — coalescing can't serve it without consulting the queue.
        let mut s = spec("g", None);
        s.eps = 0.05 + (probe as f64) * 1e-6;
        probe += 1;
        match engine.submit(s) {
            Err(_) => break,
            Ok(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(_) => panic!("engine still accepting jobs after shutdown"),
        }
    }
}
