//! Chaos integration suite: drives the service through injected faults
//! (`crates/faults`) and asserts it degrades the way `docs/service.md`
//! promises — structured errors, supervised recovery, no hangs, no
//! corrupted state.
//!
//! Compiled (and meaningful) only with the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
#![cfg(feature = "failpoints")]

use fairsqg::algo::MatchBudget;
use fairsqg::datagen::{social_graph, SocialConfig};
use fairsqg::faults::Guard;
use fairsqg::service::{
    AlgoKind, Client, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, RetryPolicy,
    SubmitError,
};
use fairsqg::wire::Value;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fail points are process-global; chaos tests must not run concurrently
/// or one test's armed point fires inside another's engine.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const TEMPLATE: &str = "\
    node u0 : director\n\
    node u1 : user\n\
    edge u1 -recommend-> u0\n\
    where u1.yearsOfExp >= ?\n\
    output u0\n";

fn registry(name: &str, seed: u64) -> Arc<GraphRegistry> {
    let r = Arc::new(GraphRegistry::new());
    r.insert(
        name,
        social_graph(SocialConfig {
            directors: 100,
            majority_share: 0.6,
            seed,
        }),
    );
    r
}

fn spec(graph: &str) -> JobSpec {
    JobSpec {
        graph: graph.into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 5,
        algo: AlgoKind::EnumQGen,
        threads: 0,
        eps: 0.05,
        lambda: 0.5,
        deadline_ms: None,
        budget: MatchBudget::UNLIMITED,
        request_key: None,
    }
}

fn wait_settled(engine: &Engine, id: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = engine.status(id).unwrap().state;
        if matches!(
            state,
            JobState::Done | JobState::Failed | JobState::Cancelled
        ) {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn robustness_counter(engine: &Engine, name: &str) -> u64 {
    engine
        .stats_value()
        .get("robustness")
        .and_then(|r| r.get(name))
        .and_then(Value::as_u64)
        .unwrap()
}

/// Acceptance criterion: a worker panic mid-job marks that job `Failed`
/// with a structured message, the pool respawns to full size, and the next
/// job completes normally.
#[test]
fn worker_panic_fails_job_respawns_pool_and_recovers() {
    let _serial = serial();
    let registry = registry("g", 11);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );
    // Workers start asynchronously; wait for full strength first so the
    // respawn assertion below is unambiguous.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.workers_alive() < 2 {
        assert!(Instant::now() < deadline, "pool never reached full size");
        std::thread::yield_now();
    }

    let _fp = Guard::arm("worker.run", "1*panic(injected chaos)").unwrap();
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Failed);
    let status = engine.status(id).unwrap();
    assert!(
        status
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected chaos"),
        "panic message surfaces in the job error: {:?}",
        status.error
    );

    // Supervision: the pool returns to full size.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.workers_alive() < 2 {
        assert!(Instant::now() < deadline, "pool never respawned");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(robustness_counter(&engine, "job_panics") >= 1);
    assert!(robustness_counter(&engine, "worker_respawns") >= 1);

    // The replacement worker serves the next job (fail point is spent).
    let id2 = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id2), JobState::Done);
    engine.shutdown();
}

/// An injected admission fault comes back as `SubmitError::Internal`, is
/// counted as a rejection, and the engine keeps admitting afterwards.
#[test]
fn queue_admission_fault_is_structured_and_transient() {
    let _serial = serial();
    let registry = registry("g", 12);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("queue.admit", "1*error(admission disabled)").unwrap();
    match engine.submit(spec("g")) {
        Err(SubmitError::Internal(m)) => assert!(m.contains("admission disabled")),
        other => panic!("expected Internal, got {other:?}"),
    }
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    engine.shutdown();
}

/// A panic inside the result-cache insert poisons the cache lock but not
/// the job: the result is still delivered, later jobs still run, and later
/// cache takers recover from the poison.
#[test]
fn cache_insert_panic_does_not_lose_the_job() {
    let _serial = serial();
    let registry = registry("g", 13);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("cache.insert", "1*panic(cache chaos)").unwrap();
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(
        wait_settled(&engine, id),
        JobState::Done,
        "the job survives a cache-insert panic"
    );
    assert!(engine.result(id).is_some());

    // The cache mutex was poisoned mid-insert; both the stats reader and
    // the next job's insert recover instead of propagating the poison.
    let _ = engine.cache_stats();
    let mut again = spec("g");
    again.eps = 0.07; // distinct fingerprint: forces a fresh cache insert
    let id2 = engine.submit(again.clone()).unwrap();
    assert_eq!(wait_settled(&engine, id2), JobState::Done);
    let id3 = engine.submit(again).unwrap();
    assert_eq!(wait_settled(&engine, id3), JobState::Done);
    assert!(
        engine.status(id3).unwrap().from_cache,
        "the cache keeps caching after poison recovery"
    );
    engine.shutdown();
}

/// The client's connect retry absorbs transient connection failures: two
/// injected refusals, then the real connection succeeds.
#[test]
fn client_connect_retries_through_transient_refusals() {
    let _serial = serial();
    let registry = registry("g", 14);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    let _fp = Guard::arm("client.connect", "2*error(connection refused)").unwrap();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    assert_eq!(fairsqg::faults::hits("client.connect"), 2);
    client.ping().unwrap();

    // With retries exhausted before the faults are spent, connect fails.
    let _fp2 = Guard::arm("client.connect", "error(connection refused)").unwrap();
    let strict = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    assert!(Client::connect_with(&addr.to_string(), strict).is_err());
    drop(_fp2);

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// A mid-stream transport fault (the server's read errors out, killing the
/// connection) is absorbed by the retrying client: it reconnects, resends,
/// and — because the submit carries a request key — the server dedups the
/// replay onto the original job instead of running it twice.
#[test]
fn idempotent_submit_survives_a_killed_connection() {
    let _serial = serial();
    let registry = registry("g", 15);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    client.ping().unwrap();

    // First submit reaches the engine, but the response write is dropped:
    // the client sees a dead connection mid-request.
    let _fp = Guard::arm("server.write", "1*error(wire cut)").unwrap();
    let mut keyed = spec("g");
    keyed.request_key = Some("chaos-replay".into());
    let id = client.submit(&keyed).unwrap();
    assert_eq!(
        fairsqg::faults::hits("server.write"),
        1,
        "the fault did fire mid-submit"
    );
    let result = client.wait(id, Duration::from_secs(60)).unwrap();
    assert!(result.get("result").is_some());

    // Exactly one job ran: the replay was deduped, not re-executed.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(
        stats
            .get("robustness")
            .and_then(|r| r.get("dedup_hits"))
            .and_then(Value::as_u64),
        Some(1)
    );

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// An injected read fault on an established connection kills only that
/// connection; the retrying client transparently reconnects.
#[test]
fn client_reconnects_after_server_read_fault() {
    let _serial = serial();
    let registry = registry("g", 16);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    client.ping().unwrap();

    let _fp = Guard::arm("server.read", "1*error(read torn down)").unwrap();
    client
        .ping()
        .expect("idempotent ping rides out the dead connection");

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// An injected graph-load failure surfaces as a typed `load_failed`
/// protocol error; the connection and the registry's existing graphs are
/// untouched.
#[test]
fn graph_load_fault_is_typed_and_non_fatal() {
    let _serial = serial();
    let registry = registry("g", 17);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = Client::connect_with(&addr.to_string(), RetryPolicy::none()).unwrap();

    // A perfectly valid file, failed by injection: callers see the same
    // typed error a real I/O fault would produce.
    let dir = std::env::temp_dir().join(format!("fairsqg-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ok_file = dir.join("ok.tsv");
    std::fs::write(&ok_file, "0\tdirector\tgender=1\n\n").unwrap();

    let _fp = Guard::arm("graph.load", "1*error(disk detached)").unwrap();
    match client.load("fresh", &ok_file.to_string_lossy()) {
        Err(fairsqg::service::ClientError::Server { code, message }) => {
            assert_eq!(code, "load_failed");
            assert!(message.contains("disk detached"));
        }
        other => panic!("expected a load_failed server error, got {other:?}"),
    }

    // Same connection, fault spent: the load now succeeds and the graph
    // serves jobs.
    let epoch = client.load("fresh", &ok_file.to_string_lossy()).unwrap();
    assert!(epoch >= 1);
    let id = client.submit_idempotent(&spec("g")).unwrap();
    assert!(client
        .wait(id, Duration::from_secs(60))
        .unwrap()
        .get("result")
        .is_some());

    let _ = std::fs::remove_dir_all(&dir);
    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// A slow worker (injected stall) plus a short deadline degrades to a
/// truncated partial archive — not a hang, not a failure.
#[test]
fn slow_worker_with_deadline_degrades_to_truncated() {
    let _serial = serial();
    let registry = registry("g", 18);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("worker.run", "1*sleep(50)").unwrap();
    let mut slow = spec("g");
    slow.deadline_ms = Some(1);
    let id = engine.submit(slow).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    assert!(
        engine.status(id).unwrap().truncated,
        "a lapsed deadline yields a truncated partial, never a hang"
    );
    engine.shutdown();
}
