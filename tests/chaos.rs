//! Chaos integration suite: drives the service through injected faults
//! (`crates/faults`) and asserts it degrades the way `docs/service.md`
//! promises — structured errors, supervised recovery, no hangs, no
//! corrupted state.
//!
//! Compiled (and meaningful) only with the `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test chaos
//! ```
#![cfg(feature = "failpoints")]

use fairsqg::algo::MatchBudget;
use fairsqg::datagen::{social_graph, SocialConfig};
use fairsqg::faults::Guard;
use fairsqg::service::{
    AlgoKind, Client, Engine, EngineConfig, GraphRegistry, JobSpec, JobState, RetryPolicy,
    SubmitError,
};
use fairsqg::wire::Value;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fail points are process-global; chaos tests must not run concurrently
/// or one test's armed point fires inside another's engine.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const TEMPLATE: &str = "\
    node u0 : director\n\
    node u1 : user\n\
    edge u1 -recommend-> u0\n\
    where u1.yearsOfExp >= ?\n\
    output u0\n";

fn registry(name: &str, seed: u64) -> Arc<GraphRegistry> {
    let r = Arc::new(GraphRegistry::new());
    r.insert(
        name,
        social_graph(SocialConfig {
            directors: 100,
            majority_share: 0.6,
            seed,
        }),
    );
    r
}

fn spec(graph: &str) -> JobSpec {
    JobSpec {
        graph: graph.into(),
        template: TEMPLATE.into(),
        group_attr: "gender".into(),
        cover: 5,
        algo: AlgoKind::EnumQGen,
        threads: 0,
        eps: 0.05,
        lambda: 0.5,
        deadline_ms: None,
        budget: MatchBudget::UNLIMITED,
        request_key: None,
        priority: fairsqg::service::DEFAULT_PRIORITY,
        client: None,
        subscribe: false,
    }
}

fn wait_settled(engine: &Engine, id: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = engine.status(id).unwrap().state;
        if state.is_terminal() {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn robustness_counter(engine: &Engine, name: &str) -> u64 {
    engine
        .stats_value()
        .get("robustness")
        .and_then(|r| r.get(name))
        .and_then(Value::as_u64)
        .unwrap()
}

/// Acceptance criterion: a worker panic mid-job marks that job `Failed`
/// with a structured message, the pool respawns to full size, and the next
/// job completes normally.
#[test]
fn worker_panic_fails_job_respawns_pool_and_recovers() {
    let _serial = serial();
    let registry = registry("g", 11);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );
    // Workers start asynchronously; wait for full strength first so the
    // respawn assertion below is unambiguous.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.workers_alive() < 2 {
        assert!(Instant::now() < deadline, "pool never reached full size");
        std::thread::yield_now();
    }

    let _fp = Guard::arm("worker.run", "1*panic(injected chaos)").unwrap();
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Failed);
    let status = engine.status(id).unwrap();
    assert!(
        status
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected chaos"),
        "panic message surfaces in the job error: {:?}",
        status.error
    );

    // Supervision: the pool returns to full size.
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.workers_alive() < 2 {
        assert!(Instant::now() < deadline, "pool never respawned");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(robustness_counter(&engine, "job_panics") >= 1);
    assert!(robustness_counter(&engine, "worker_respawns") >= 1);

    // The replacement worker serves the next job (fail point is spent).
    let id2 = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id2), JobState::Done);
    engine.shutdown();
}

/// An injected admission fault comes back as `SubmitError::Internal`, is
/// counted as a rejection, and the engine keeps admitting afterwards.
#[test]
fn queue_admission_fault_is_structured_and_transient() {
    let _serial = serial();
    let registry = registry("g", 12);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("queue.admit", "1*error(admission disabled)").unwrap();
    match engine.submit(spec("g")) {
        Err(SubmitError::Internal(m)) => assert!(m.contains("admission disabled")),
        other => panic!("expected Internal, got {other:?}"),
    }
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    engine.shutdown();
}

/// A panic inside the result-cache insert poisons the cache lock but not
/// the job: the result is still delivered, later jobs still run, and later
/// cache takers recover from the poison.
#[test]
fn cache_insert_panic_does_not_lose_the_job() {
    let _serial = serial();
    let registry = registry("g", 13);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("cache.insert", "1*panic(cache chaos)").unwrap();
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(
        wait_settled(&engine, id),
        JobState::Done,
        "the job survives a cache-insert panic"
    );
    assert!(engine.result(id).is_some());

    // The cache mutex was poisoned mid-insert; both the stats reader and
    // the next job's insert recover instead of propagating the poison.
    let _ = engine.cache_stats();
    let mut again = spec("g");
    again.eps = 0.07; // distinct fingerprint: forces a fresh cache insert
    let id2 = engine.submit(again.clone()).unwrap();
    assert_eq!(wait_settled(&engine, id2), JobState::Done);
    let id3 = engine.submit(again).unwrap();
    assert_eq!(wait_settled(&engine, id3), JobState::Done);
    assert!(
        engine.status(id3).unwrap().from_cache,
        "the cache keeps caching after poison recovery"
    );
    engine.shutdown();
}

/// The client's connect retry absorbs transient connection failures: two
/// injected refusals, then the real connection succeeds.
#[test]
fn client_connect_retries_through_transient_refusals() {
    let _serial = serial();
    let registry = registry("g", 14);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    let _fp = Guard::arm("client.connect", "2*error(connection refused)").unwrap();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    assert_eq!(fairsqg::faults::hits("client.connect"), 2);
    client.ping().unwrap();

    // With retries exhausted before the faults are spent, connect fails.
    let _fp2 = Guard::arm("client.connect", "error(connection refused)").unwrap();
    let strict = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    assert!(Client::connect_with(&addr.to_string(), strict).is_err());
    drop(_fp2);

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// A mid-stream transport fault (the server's read errors out, killing the
/// connection) is absorbed by the retrying client: it reconnects, resends,
/// and — because the submit carries a request key — the server dedups the
/// replay onto the original job instead of running it twice.
#[test]
fn idempotent_submit_survives_a_killed_connection() {
    let _serial = serial();
    let registry = registry("g", 15);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    client.ping().unwrap();

    // First submit reaches the engine, but the response write is dropped:
    // the client sees a dead connection mid-request.
    let _fp = Guard::arm("server.write", "1*error(wire cut)").unwrap();
    let mut keyed = spec("g");
    keyed.request_key = Some("chaos-replay".into());
    let id = client.submit(&keyed).unwrap();
    assert_eq!(
        fairsqg::faults::hits("server.write"),
        1,
        "the fault did fire mid-submit"
    );
    let result = client.wait(id, Duration::from_secs(60)).unwrap();
    assert!(result.get("result").is_some());

    // Exactly one job ran: the replay was deduped, not re-executed.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(
        stats
            .get("robustness")
            .and_then(|r| r.get("dedup_hits"))
            .and_then(Value::as_u64),
        Some(1)
    );

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// An injected read fault on an established connection kills only that
/// connection; the retrying client transparently reconnects.
#[test]
fn client_reconnects_after_server_read_fault() {
    let _serial = serial();
    let registry = registry("g", 16);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut client = Client::connect_with(&addr.to_string(), policy).unwrap();
    client.ping().unwrap();

    let _fp = Guard::arm("server.read", "1*error(read torn down)").unwrap();
    client
        .ping()
        .expect("idempotent ping rides out the dead connection");

    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// An injected graph-load failure surfaces as a typed `load_failed`
/// protocol error; the connection and the registry's existing graphs are
/// untouched.
#[test]
fn graph_load_fault_is_typed_and_non_fatal() {
    let _serial = serial();
    let registry = registry("g", 17);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = fairsqg::service::spawn("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = Client::connect_with(&addr.to_string(), RetryPolicy::none()).unwrap();

    // A perfectly valid file, failed by injection: callers see the same
    // typed error a real I/O fault would produce.
    let dir = std::env::temp_dir().join(format!("fairsqg-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ok_file = dir.join("ok.tsv");
    std::fs::write(&ok_file, "0\tdirector\tgender=1\n\n").unwrap();

    let _fp = Guard::arm("graph.load", "1*error(disk detached)").unwrap();
    match client.load("fresh", &ok_file.to_string_lossy()) {
        Err(fairsqg::service::ClientError::Server { code, message, .. }) => {
            assert_eq!(code, "load_failed");
            assert!(message.contains("disk detached"));
        }
        other => panic!("expected a load_failed server error, got {other:?}"),
    }

    // Same connection, fault spent: the load now succeeds and the graph
    // serves jobs.
    let epoch = client.load("fresh", &ok_file.to_string_lossy()).unwrap();
    assert!(epoch >= 1);
    let id = client.submit_idempotent(&spec("g")).unwrap();
    assert!(client
        .wait(id, Duration::from_secs(60))
        .unwrap()
        .get("result")
        .is_some());

    let _ = std::fs::remove_dir_all(&dir);
    client.shutdown().unwrap();
    drop(client);
    stop.stop();
    server.join().unwrap().unwrap();
}

fn engine_counter(engine: &Engine, block: &str, name: &str) -> u64 {
    engine
        .stats_value()
        .get(block)
        .and_then(|r| r.get(name))
        .and_then(Value::as_u64)
        .unwrap()
}

/// A coalesced follower whose leader panics is promoted to a fresh
/// leader and requeued: the follower still gets a real answer, and the
/// leader's failure stays the leader's alone.
#[test]
fn leader_panic_promotes_follower_to_fresh_leader() {
    let _serial = serial();
    let registry = registry("g", 21);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            cache_entries: 0,
            coalesce: true,
            ..EngineConfig::default()
        },
    );
    // Park the single worker inside an injected stall so the leader and
    // follower can be enqueued (and coalesced) behind it.
    let _stall = Guard::arm("worker.run", "1*sleep(200)").unwrap();
    let mut blocker = spec("g");
    blocker.eps = 0.09; // distinct fingerprint: must not coalesce
    let _blocker = engine.submit(blocker).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while fairsqg::faults::hits("worker.run") < 1 {
        assert!(Instant::now() < deadline, "blocker never hit the stall");
        std::thread::yield_now();
    }
    // Re-arm: the *next* worker.run firing (the leader) panics.
    let _fp = Guard::arm("worker.run", "1*panic(leader chaos)").unwrap();
    let leader = engine.submit(spec("g")).unwrap();
    let follower = engine.submit(spec("g")).unwrap();
    assert_ne!(leader, follower);
    assert_eq!(engine_counter(&engine, "coalescing", "attached"), 1);

    assert_eq!(wait_settled(&engine, leader), JobState::Failed);
    assert_eq!(
        wait_settled(&engine, follower),
        JobState::Done,
        "the promoted follower reruns the work and completes"
    );
    assert!(engine.result(follower).is_some());
    assert_eq!(engine_counter(&engine, "coalescing", "requeued"), 1);
    engine.shutdown();
}

/// Promotion ordering across a brownout change: a follower promoted while
/// the engine is Degraded runs under the *current* level — its archive is
/// flagged `stats.brownout` even though it was admitted at Nominal.
#[test]
fn promoted_follower_runs_under_current_brownout_level() {
    let _serial = serial();
    let registry = registry("g", 22);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            cache_entries: 0,
            coalesce: true,
            ..EngineConfig::default()
        },
    );
    let _stall = Guard::arm("worker.run", "1*sleep(200)").unwrap();
    let mut blocker = spec("g");
    blocker.eps = 0.09;
    let _blocker = engine.submit(blocker).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while fairsqg::faults::hits("worker.run") < 1 {
        assert!(Instant::now() < deadline, "blocker never hit the stall");
        std::thread::yield_now();
    }
    let _fp = Guard::arm("worker.run", "1*panic(leader chaos)").unwrap();
    // Admitted at Nominal...
    let leader = engine.submit(spec("g")).unwrap();
    let follower = engine.submit(spec("g")).unwrap();
    // ...but by the time the leader fails and the follower is promoted,
    // the controller has been forced Degraded.
    let _level = Guard::arm("brownout.level", "error(degraded)").unwrap();
    let mut probe = spec("g");
    probe.eps = 0.08; // distinct fingerprint: only drives a gate evaluation
    let probe_id = engine.submit(probe).unwrap();

    assert_eq!(wait_settled(&engine, leader), JobState::Failed);
    assert_eq!(wait_settled(&engine, follower), JobState::Done);
    wait_settled(&engine, probe_id);
    let result = engine.result(follower).unwrap();
    let brownout = result
        .get("stats")
        .and_then(|s| s.get("brownout"))
        .cloned()
        .unwrap_or(Value::Null);
    assert!(
        !matches!(brownout, Value::Null),
        "the promoted rerun carries the brownout mark: {result}"
    );
    assert_eq!(
        brownout.get("level").and_then(Value::as_str),
        Some("degraded")
    );
    engine.shutdown();
}

/// Watchdog escalation: a worker wedged far past the job's deadline is
/// hard-stopped, then declared lost — the job settles with a structured
/// watchdog failure (never hangs) and a replacement worker serves the
/// next job.
#[test]
fn watchdog_escalates_wedged_worker_and_recovers() {
    let _serial = serial();
    let registry = registry("g", 23);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            watchdog_grace: Some(Duration::from_millis(40)),
            ..EngineConfig::default()
        },
    );
    // The stall ignores cooperative cancellation AND the hard-stop flag —
    // exactly the wedge the watchdog exists for.
    let _fp = Guard::arm("worker.run", "1*sleep(700)").unwrap();
    let mut wedged = spec("g");
    wedged.deadline_ms = Some(1);
    let id = engine.submit(wedged).unwrap();
    let state = wait_settled(&engine, id);
    assert_eq!(state, JobState::Failed);
    assert!(
        engine
            .status(id)
            .unwrap()
            .error
            .as_deref()
            .unwrap_or("")
            .contains("watchdog"),
        "the settlement names the watchdog"
    );
    assert!(engine_counter(&engine, "watchdog", "hard_stops") >= 1);
    assert!(engine_counter(&engine, "watchdog", "lost_workers") >= 1);

    // The replacement worker serves the next job; the woken straggler's
    // own settlement is a no-op (double-settle guard).
    let id2 = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id2), JobState::Done);
    engine.shutdown();
}

/// Forced shedding (deterministic `brownout.level` fail point): priority
/// below the threshold is rejected with a typed `Shed` and a retry hint;
/// default-priority work is still admitted.
#[test]
fn forced_shedding_rejects_low_priority_only() {
    let _serial = serial();
    let registry = registry("g", 24);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _level = Guard::arm("brownout.level", "error(shedding)").unwrap();
    let mut low = spec("g");
    low.priority = 0;
    match engine.submit(low) {
        Err(SubmitError::Shed { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected Shed, got {other:?}"),
    }
    assert!(engine_counter(&engine, "pressure", "shed") >= 1);
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    engine.shutdown();
}

/// The `admission.reject` fail point deterministically forces the
/// deadline-admission path: a deadline-bearing job is refused with the
/// full typed payload; a deadline-free job passes the same gate.
#[test]
fn forced_admission_rejection_is_typed() {
    let _serial = serial();
    let registry = registry("g", 25);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("admission.reject", "1*error(forced)").unwrap();
    let mut dl = spec("g");
    dl.deadline_ms = Some(5_000);
    match engine.submit(dl) {
        Err(SubmitError::DeadlineUnmeetable {
            deadline_ms,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(deadline_ms, 5_000);
            assert!(retry_after_ms > 0);
        }
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }
    assert!(engine_counter(&engine, "pressure", "deadline_rejected") >= 1);
    let id = engine.submit(spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    engine.shutdown();
}

/// Graceful drain with work in flight: the running job completes, every
/// queued job (and its followers) settles `Drained`, new submissions are
/// refused with the typed `Draining`, and `drain_complete` turns true.
#[test]
fn drain_bounces_queued_work_and_finishes_running_jobs() {
    let _serial = serial();
    let registry = registry("g", 26);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            cache_entries: 0,
            coalesce: true,
            ..EngineConfig::default()
        },
    );
    let _stall = Guard::arm("worker.run", "1*sleep(150)").unwrap();
    let running = engine.submit(spec("g")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while fairsqg::faults::hits("worker.run") < 1 {
        assert!(Instant::now() < deadline, "running job never started");
        std::thread::yield_now();
    }
    let mut queued = spec("g");
    queued.eps = 0.07;
    let queued_id = engine.submit(queued.clone()).unwrap();
    let follower_id = engine.submit(queued).unwrap(); // coalesces onto queued_id

    let (bounced, in_flight) = engine.begin_drain();
    assert!(bounced >= 1, "the queued leader is bounced");
    assert!(in_flight >= 1, "the running job is not bounced");
    assert_eq!(wait_settled(&engine, queued_id), JobState::Drained);
    assert_eq!(
        wait_settled(&engine, follower_id),
        JobState::Drained,
        "followers drain with their leader; promotion would be wrong"
    );
    assert!(matches!(
        engine.submit(spec("g")),
        Err(SubmitError::Draining)
    ));
    assert_eq!(
        wait_settled(&engine, running),
        JobState::Done,
        "in-flight work still completes during a drain"
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while !engine.drain_complete() {
        assert!(Instant::now() < deadline, "drain never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(engine_counter(&engine, "drain", "drained") >= 2);
    engine.shutdown();
}

/// A slow worker (injected stall) plus a short deadline degrades to a
/// truncated partial archive — not a hang, not a failure.
#[test]
fn slow_worker_with_deadline_degrades_to_truncated() {
    let _serial = serial();
    let registry = registry("g", 18);
    let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
    let _fp = Guard::arm("worker.run", "1*sleep(50)").unwrap();
    let mut slow = spec("g");
    slow.deadline_ms = Some(1);
    let id = engine.submit(slow).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    assert!(
        engine.status(id).unwrap().truncated,
        "a lapsed deadline yields a truncated partial, never a hang"
    );
    engine.shutdown();
}

/// Manifest crash drills: an injected `manifest.write` fault surfaces as
/// a typed I/O error (and `return_early` silently loses the write — the
/// kill-before-flush case); after a real write, a fresh registry (the
/// restarted process) recovers every file-backed graph, and a
/// `manifest.read` fault degrades the restart to an empty registry
/// instead of a crash.
#[test]
fn manifest_faults_are_typed_and_recovery_survives_a_kill() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("fairsqg-chaos-man-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fsg = dir.join("g.fsg");
    fairsqg::store::write_graph_to_path(
        &social_graph(SocialConfig {
            directors: 40,
            majority_share: 0.6,
            seed: 27,
        }),
        &fsg,
    )
    .unwrap();
    let manifest = dir.join("manifest.json");
    let manifest_path = manifest.to_str().unwrap();

    let registry = GraphRegistry::new();
    registry.load_path("g", fsg.to_str().unwrap()).unwrap();

    // Injected write failure: typed, nothing half-written.
    {
        let _fp = Guard::arm("manifest.write", "1*error(disk full)").unwrap();
        let err = registry.write_manifest(manifest_path).unwrap_err();
        assert!(err.to_string().contains("disk full"), "typed: {err}");
        assert!(!manifest.exists(), "a failed write leaves no manifest");
    }
    // Injected lost write (killed before flush): silently absent.
    {
        let _fp = Guard::arm("manifest.write", "1*return_early").unwrap();
        registry.write_manifest(manifest_path).unwrap();
        assert!(!manifest.exists(), "a lost write leaves no manifest");
    }
    // Real write, then "kill": a brand-new registry recovers the graph.
    registry.write_manifest(manifest_path).unwrap();
    drop(registry);
    let restarted = GraphRegistry::new();
    let report = restarted.load_manifest(manifest_path).unwrap();
    assert_eq!(report.loaded, vec!["g".to_string()]);
    assert!(restarted.get("g").is_some());

    // A read fault on the next restart degrades to "no graphs", typed.
    {
        let _fp = Guard::arm("manifest.read", "1*error(manifest unreadable)").unwrap();
        let err = GraphRegistry::new()
            .load_manifest(manifest_path)
            .unwrap_err();
        assert!(err.to_string().contains("manifest unreadable"));
    }
    {
        let _fp = Guard::arm("manifest.read", "1*return_early").unwrap();
        let empty = GraphRegistry::new().load_manifest(manifest_path).unwrap();
        assert!(empty.loaded.is_empty() && empty.skipped.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A read fault on a multiplexed connection kills only that connection:
/// the client on it sees a typed stream error, while a fresh connection
/// to the same event loop works immediately.
#[cfg(unix)]
#[test]
fn mux_read_fault_kills_only_that_connection() {
    use fairsqg::service::{spawn_mux, MuxClient};

    let _serial = serial();
    let registry = registry("g", 31);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = spawn_mux("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    let victim = MuxClient::connect(&addr.to_string()).unwrap();
    victim.ping().unwrap();

    let _fp = Guard::arm("server.read", "1*error(read torn down)").unwrap();
    victim
        .ping()
        .expect_err("the poisoned connection surfaces a typed error, not a hang");
    assert_eq!(fairsqg::faults::hits("server.read"), 1);

    // The event loop is unharmed: a new connection serves jobs end to end.
    let fresh = MuxClient::connect(&addr.to_string()).unwrap();
    fresh.ping().unwrap();
    let id = fresh.submit(&spec("g")).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    assert!(fresh.result(id).unwrap().get("entries").is_some());

    drop(victim);
    drop(fresh);
    stop.stop();
    server.join().unwrap().unwrap();
}

/// A write fault after a keyed submit reached the engine loses only the
/// ack: replaying the same `request_key` over a fresh multiplexed
/// connection dedupes to the original job instead of re-executing it —
/// the PR 2 idempotency contract holds on the async server.
#[cfg(unix)]
#[test]
fn mux_idempotent_submit_survives_a_killed_connection() {
    use fairsqg::service::{spawn_mux, MuxClient};

    let _serial = serial();
    let registry = registry("g", 32);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig::default(),
    ));
    let (addr, stop, server) = spawn_mux("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    let mut keyed = spec("g");
    keyed.request_key = Some("mux-chaos-replay".into());

    // The submit reaches the engine but the ack write is dropped: the
    // client sees a dead connection mid-request.
    let _fp = Guard::arm("server.write", "1*error(wire cut)").unwrap();
    let victim = MuxClient::connect(&addr.to_string()).unwrap();
    victim
        .submit(&keyed)
        .expect_err("the lost ack is a typed error on the dead connection");
    assert_eq!(
        fairsqg::faults::hits("server.write"),
        1,
        "the fault did fire mid-submit"
    );

    let replay = MuxClient::connect(&addr.to_string()).unwrap();
    let id = replay.submit(&keyed).unwrap();
    assert_eq!(wait_settled(&engine, id), JobState::Done);
    assert!(replay.result(id).unwrap().get("entries").is_some());

    // Exactly one job ran: the replay was deduped, not re-executed.
    let stats = engine.stats_value();
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(robustness_counter(&engine, "dedup_hits"), 1);

    drop(victim);
    drop(replay);
    stop.stop();
    server.join().unwrap().unwrap();
}
