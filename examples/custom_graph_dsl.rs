//! Bring your own graph: load a TSV graph, write the query template in the
//! text DSL, and generate fair + diverse query suggestions.
//!
//! ```text
//! cargo run --example custom_graph_dsl
//! ```

use fairsqg::graph::read_tsv;
use fairsqg::prelude::*;
use fairsqg::query::{parse_template, render_instance};
use std::io::BufReader;

/// An inline TSV graph: a small citation network. In practice this comes
/// from a file (`read_tsv(BufReader::new(File::open(path)?))`).
const GRAPH_TSV: &str = "\
# nodes: id\tlabel\tattr=value ...
0\tpaper\ttopic=s:ML\tcitations=120\tyear=2015
1\tpaper\ttopic=s:ML\tcitations=80\tyear=2017
2\tpaper\ttopic=s:DB\tcitations=95\tyear=2016
3\tpaper\ttopic=s:DB\tcitations=30\tyear=2019
4\tpaper\ttopic=s:ML\tcitations=15\tyear=2021
5\tpaper\ttopic=s:DB\tcitations=10\tyear=2022
6\tauthor\thIndex=25
7\tauthor\thIndex=12

# edges: src\tlabel\tdst
1\tcites\t0
2\tcites\t0
3\tcites\t2
4\tcites\t1
5\tcites\t2
5\tcites\t3
6\tauthored\t0
6\tauthored\t2
6\tauthored\t4
7\tauthored\t1
7\tauthored\t3
7\tauthored\t5
";

/// The query template in the DSL: papers by some author, with a
/// parameterized citation threshold and an optional requirement of being
/// cited by another paper.
const TEMPLATE_DSL: &str = "\
node p  : paper
node a  : author
node c  : paper
edge a -authored-> p
optional c -cites-> p
where p.citations >= ?
output p
";

fn main() {
    let graph = read_tsv(BufReader::new(GRAPH_TSV.as_bytes())).expect("valid TSV");
    println!(
        "loaded graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let template = parse_template(graph.schema(), TEMPLATE_DSL).expect("valid DSL");

    // Fairness across the two topics: at least one paper of each.
    let s = graph.schema();
    let topic = s.find_attr("topic").unwrap();
    let ml = AttrValue::Str(s.find_symbol("ML").unwrap());
    let db = AttrValue::Str(s.find_symbol("DB").unwrap());
    let groups = GroupSet::by_attribute(&graph, topic, &[ml, db]);
    let spec = CoverageSpec::equal_opportunity(2, 1);

    let fair = FairSqg::new(&graph)
        .epsilon(0.25)
        .diversity(DiversityConfig {
            pair_cap: 0,
            ..DiversityConfig::default()
        });
    let domains = fair.domains_for(&template);
    let result = fair.generate(&template, &groups, &spec, Algorithm::BiQGen);

    println!(
        "\n{} suggested queries (of {} possible instantiations):",
        result.entries.len(),
        domains.instance_space_size()
    );
    let mut entries = result.entries.clone();
    entries.sort_by(|a, b| {
        b.objectives()
            .fcov
            .partial_cmp(&a.objectives().fcov)
            .unwrap()
    });
    for e in &entries {
        println!(
            "  (ML={}, DB={})  δ={:.2} f={:.0}  {}",
            e.result.counts[0],
            e.result.counts[1],
            e.result.objectives.delta,
            e.result.objectives.fcov,
            render_instance(s, &template, &domains, &e.inst),
        );
    }
}
