//! Online workload generation for query benchmarking (Section IV-C):
//! maintain a fixed-size, high-quality set of `k` benchmark queries over a
//! stream of candidate instances, with ε growing only when forced.
//!
//! ```text
//! cargo run --release --example benchmark_workload
//! ```

use fairsqg::algo::{OnlineOptions, OnlineQGen, ShuffledStream};
use fairsqg::datagen::{workload, CoverageMode, DatasetKind, WorkloadParams};
use fairsqg::prelude::*;
use fairsqg::query::render_instance;
use std::time::Instant;

fn main() {
    // A citation-graph workload with topic groups: generate k = 8
    // benchmark queries that all cover each topic fairly.
    let params = WorkloadParams {
        template_edges: 3,
        range_vars: 2,
        edge_vars: 1,
        groups: 3,
        coverage: CoverageMode::AutoFraction(0.5),
        max_values_per_range_var: 12,
        ..WorkloadParams::default()
    };
    let w = workload(DatasetKind::Cite, 1200, &params);
    println!(
        "dataset {}: |V|={}, |E|={}, |I(Q)|={}",
        w.name,
        w.graph.node_count(),
        w.graph.edge_count(),
        w.instance_space_size()
    );

    let cfg = Configuration::new(
        &w.graph,
        &w.template,
        &w.domains,
        &w.groups,
        &w.spec,
        0.01,
        DiversityConfig::default(),
    );

    let mut gen = OnlineQGen::new(
        cfg,
        OnlineOptions {
            k: 8,
            window: 40,
            initial_eps: 0.01,
        },
    );

    let stream = ShuffledStream::new(&w.domains, 0xBEEF);
    let start = Instant::now();
    for inst in stream {
        gen.push(&inst);
    }
    let elapsed = start.elapsed();

    println!(
        "\nprocessed {} streamed instances in {:.0} ms (avg {:.2} ms/instance)",
        gen.processed(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / gen.processed().max(1) as f64
    );
    println!(
        "maintained ε grew to {:.3}; final workload of {} queries:",
        gen.eps(),
        gen.current().len()
    );
    for e in gen.current() {
        println!(
            "  δ={:.2} f={:.0} coverage={:?}  {}",
            e.result.objectives.delta,
            e.result.objectives.fcov,
            e.result.counts,
            render_instance(w.graph.schema(), &w.template, &w.domains, &e.inst),
        );
    }

    // The ε trajectory (how approximation quality was traded for size k).
    let trace = gen.trace();
    let step = (trace.len() / 8).max(1);
    println!("\nε trajectory:");
    for p in trace.iter().step_by(step) {
        println!("  t={:4}  ε={:.3}  |set|={}", p.t, p.eps, p.len);
    }
}
