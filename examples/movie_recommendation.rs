//! Fair movie recommendation over a knowledge graph (the paper's Exp-4
//! case study): suggest queries whose answers balance movie genres while
//! staying diverse.
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```

use fairsqg::datagen::{movies_graph, MoviesConfig};
use fairsqg::prelude::*;
use fairsqg::query::{render_instance, TemplateBuilder as Tb};

fn main() {
    let graph = movies_graph(MoviesConfig {
        movies: 1500,
        seed: 7,
    });
    let s = graph.schema();

    // Movie u0 (rating >= x1) acted by an awarded actor u1 (awards >= x2),
    // optionally produced in the US.
    let mut tb = Tb::new();
    let u0 = tb.node(s.find_node_label("movie").unwrap());
    let u1 = tb.node(s.find_node_label("actor").unwrap());
    let u2 = tb.node(s.find_node_label("country").unwrap());
    tb.edge(u1, u0, s.find_edge_label("actedIn").unwrap());
    tb.optional_edge(u0, u2, s.find_edge_label("producedIn").unwrap());
    tb.literal(
        u2,
        s.find_attr("name").unwrap(),
        CmpOp::Eq,
        AttrValue::Str(s.find_symbol("US").unwrap()),
    );
    tb.range_literal(u0, s.find_attr("rating").unwrap(), CmpOp::Ge);
    tb.range_literal(u1, s.find_attr("awards").unwrap(), CmpOp::Ge);
    let template = tb.finish(u0).expect("movie template");

    // Fairness over two genres with very different popularity.
    let genre = s.find_attr("genre").unwrap();
    let romance = AttrValue::Str(s.find_symbol("Romance").unwrap());
    let horror = AttrValue::Str(s.find_symbol("Horror").unwrap());
    let groups = GroupSet::by_attribute(&graph, genre, &[romance, horror]);
    println!(
        "catalog: {} Romance vs {} Horror movies (skewed)",
        groups.size(GroupId(0)),
        groups.size(GroupId(1)),
    );

    let spec = CoverageSpec::equal_opportunity(2, 30);
    let fair = FairSqg::new(&graph).epsilon(0.1);
    let domains = fair.domains_for(&template);

    let result = fair.generate(&template, &groups, &spec, Algorithm::BiQGen);
    println!(
        "\nBiQGen suggests {} queries (each covering ≥30 movies of each genre):",
        result.entries.len()
    );
    let mut entries = result.entries.clone();
    entries.sort_by(|a, b| {
        b.objectives()
            .fcov
            .partial_cmp(&a.objectives().fcov)
            .unwrap()
    });
    for e in &entries {
        println!(
            "  (Romance={:3}, Horror={:3}, total={:4})  δ={:.2} f={:.0}  {}",
            e.result.counts[0],
            e.result.counts[1],
            e.result.matches.len(),
            e.result.objectives.delta,
            e.result.objectives.fcov,
            render_instance(s, &template, &domains, &e.inst),
        );
    }

    // Compare against the exact Pareto front: how much do we compress?
    let exact = fair.generate(&template, &groups, &spec, Algorithm::Kungs);
    println!(
        "\nexact Pareto front: {} instances; ε-Pareto summary: {} instances",
        exact.entries.len(),
        result.entries.len()
    );
}
