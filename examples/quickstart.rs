//! Quickstart: build a tiny graph, declare a template with variables,
//! and generate an ε-Pareto set of fair + diverse subgraph queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fairsqg::prelude::*;
use fairsqg::query::render_instance;

fn main() {
    // 1. A toy professional network: 12 candidates with a skewed gender
    //    distribution, recommended by users with varying experience.
    let mut b = GraphBuilder::new();
    let mut candidates = Vec::new();
    for i in 0..12i64 {
        let gender = i64::from(i % 3 == 0); // 1/3 of candidates in group 1
        candidates.push(b.add_named_node(
            "candidate",
            &[
                ("gender", AttrValue::Int(gender)),
                ("major", AttrValue::Int(i % 5)),
            ],
        ));
    }
    for i in 0..6usize {
        let exp = 5 * (i as i64 % 3) + 5;
        let u = b.add_named_node("user", &[("yearsOfExp", AttrValue::Int(exp))]);
        for j in 0..4usize {
            b.add_named_edge(u, candidates[(i * 2 + j * 3) % 12], "recommend");
        }
    }
    let graph = b.finish();

    // 2. A query template: candidate u0 recommended by user u1 with
    //    parameterized experience, plus an optional second recommender.
    let s = graph.schema();
    let mut tb = TemplateBuilder::new();
    let u0 = tb.node(s.find_node_label("candidate").unwrap());
    let u1 = tb.node(s.find_node_label("user").unwrap());
    let u2 = tb.node(s.find_node_label("user").unwrap());
    let recommend = s.find_edge_label("recommend").unwrap();
    tb.edge(u1, u0, recommend);
    tb.optional_edge(u2, u0, recommend);
    tb.range_literal(u1, s.find_attr("yearsOfExp").unwrap(), CmpOp::Ge);
    let template = tb.finish(u0).expect("valid template");

    // 3. Fairness constraints: cover both gender groups with ≥2 candidates.
    let gender = s.find_attr("gender").unwrap();
    let groups = GroupSet::by_attribute(&graph, gender, &[AttrValue::Int(0), AttrValue::Int(1)]);
    let spec = CoverageSpec::equal_opportunity(2, 2);

    // 4. Generate with the recommended algorithm (BiQGen).
    let fair = FairSqg::new(&graph).epsilon(0.2);
    let result = fair.generate(&template, &groups, &spec, Algorithm::BiQGen);
    let domains = fair.domains_for(&template);

    println!(
        "generated {} representative query instances (verified {} of {} possible):\n",
        result.entries.len(),
        result.stats.verified,
        domains.instance_space_size()
    );
    for e in &result.entries {
        println!(
            "  {}\n    -> {} matches, per-group coverage {:?}, diversity {:.3}, coverage score {:.1}",
            render_instance(s, &template, &domains, &e.inst),
            e.result.matches.len(),
            e.result.counts,
            e.result.objectives.delta,
            e.result.objectives.fcov,
        );
    }
}
