//! Regular path queries + fair generation (the paper's future-work
//! combination): restrict the output population with an RPQ, then generate
//! fair and diverse queries over that population.
//!
//! Scenario: recommend papers from the *intellectual descendants* of the
//! field's most-cited paper — papers that reach it through one or more
//! `cites` edges — while covering several research topics fairly.
//!
//! ```text
//! cargo run --release --example rpq_influence
//! ```

use fairsqg::datagen::{citations_graph, topic_groups, CitationsConfig};
use fairsqg::prelude::*;
use fairsqg::query::{render_instance, RefinementDomains, TemplateBuilder};
use fairsqg::rpq::{parse_path_regex, sources_reaching};

fn main() {
    let graph = citations_graph(CitationsConfig {
        papers: 1200,
        seed: 3,
    });
    let s = graph.schema();
    let paper = s.find_node_label("paper").unwrap();
    let noc = s.find_attr("numberOfCitations").unwrap();

    // The most-cited paper — the "seminal work".
    let seminal = *graph
        .nodes_with_label(paper)
        .iter()
        .max_by_key(|&&p| graph.attr(p, noc).and_then(|v| v.as_int()).unwrap_or(0))
        .unwrap();
    println!(
        "seminal paper: node {seminal} with {} citations",
        graph.attr(seminal, noc).unwrap().as_int().unwrap()
    );

    // RPQ: papers that reach the seminal paper via cites+.
    let regex = parse_path_regex(s, "cites+").expect("valid path expression");
    let descendants = sources_reaching(&graph, &[seminal], &regex);
    println!(
        "intellectual descendants (cites+ to it): {} of {} papers",
        descendants.len(),
        graph.label_population(paper)
    );

    // Template over the restricted population: papers by an author, with a
    // parameterized citation threshold.
    let mut tb = TemplateBuilder::new();
    let u0 = tb.node(paper);
    let u1 = tb.node(s.find_node_label("author").unwrap());
    tb.edge(u1, u0, s.find_edge_label("authored").unwrap());
    // `numberOfCitations <= x`: tightening removes highly-cited papers,
    // which skew toward the head topic — so the threshold *rebalances*
    // topic coverage as it refines.
    tb.range_literal(u0, noc, CmpOp::Le);
    tb.range_literal(u0, s.find_attr("year").unwrap(), CmpOp::Ge);
    let template = tb.finish(u0).expect("template");

    // Topic fairness over the restricted population.
    let groups = topic_groups(&graph, 2);
    let counts_in_pool = groups.count_in_groups(&descendants);
    println!("descendant topic mix: {counts_in_pool:?}");
    let c = ((*counts_in_pool.iter().min().unwrap() as f64) * 0.7) as u32;
    let spec = CoverageSpec::equal_opportunity(2, c.max(1));

    let domains = RefinementDomains::build(&template, &graph, DomainConfig::default());
    let cfg = Configuration::new(
        &graph,
        &template,
        &domains,
        &groups,
        &spec,
        0.1,
        DiversityConfig::default(),
    )
    .with_output_restriction(&descendants);

    let result = biqgen(cfg, BiQGenOptions::default());
    println!(
        "\n{} suggested queries over the descendant population (cover >= {} per topic):",
        result.entries.len(),
        c.max(1)
    );
    let mut entries = result.entries.clone();
    entries.sort_by(|a, b| {
        b.objectives()
            .fcov
            .partial_cmp(&a.objectives().fcov)
            .unwrap()
    });
    for e in entries.iter().take(6) {
        println!(
            "  topics {:?} of {} matches  δ={:.2} f={:.0}  {}",
            e.result.counts,
            e.result.matches.len(),
            e.result.objectives.delta,
            e.result.objectives.fcov,
            render_instance(s, &template, &domains, &e.inst),
        );
    }
}
