//! Talent search with equal opportunity (the paper's Example 1).
//!
//! A recruiter searches a professional network for directors recommended
//! by experienced users at large companies. The initial query returns a
//! gender-skewed answer; FairSQG suggests revised queries whose answers
//! cover both gender groups with the desired cardinality while staying
//! diverse across majors.
//!
//! ```text
//! cargo run --release --example talent_search
//! ```

use fairsqg::datagen::{gender_groups, social_graph, SocialConfig};
use fairsqg::prelude::*;
use fairsqg::query::{explain_revision, render_instance, render_template, TemplateBuilder as Tb};

fn main() {
    // The LKI-like professional network (see fairsqg-datagen).
    let graph = social_graph(SocialConfig {
        directors: 1200,
        majority_share: 0.68, // the paper's 375:173 motivating skew
        seed: 42,
    });
    let s = graph.schema();

    // Template (Fig. 1): director u0 <-recommend- user u1 -worksAt-> org u2,
    // plus an optional second recommender u3; parameterized thresholds on
    // the recommenders' experience and the org size.
    let mut tb = Tb::new();
    let u0 = tb.node(s.find_node_label("director").unwrap());
    let u1 = tb.node(s.find_node_label("user").unwrap());
    let u2 = tb.node(s.find_node_label("org").unwrap());
    let u3 = tb.node(s.find_node_label("user").unwrap());
    let recommend = s.find_edge_label("recommend").unwrap();
    tb.edge(u1, u0, recommend);
    tb.edge(u1, u2, s.find_edge_label("worksAt").unwrap());
    tb.optional_edge(u3, u0, recommend);
    tb.range_literal(u1, s.find_attr("yearsOfExp").unwrap(), CmpOp::Ge);
    tb.range_literal(u2, s.find_attr("employees").unwrap(), CmpOp::Ge);
    let template = tb.finish(u0).expect("talent template");

    // Equal opportunity, calibrated to the search: the initial (fully
    // relaxed) query answers with a skewed gender mix; we ask for revised
    // queries that still cover each group with at least 60% of the
    // minority group's presence in that initial answer.
    let groups = gender_groups(&graph);
    let root_counts = {
        use fairsqg::matcher::{match_output_set, MatchOptions};
        use fairsqg::query::{ConcreteQuery, DomainConfig, Instantiation, RefinementDomains};
        let domains = RefinementDomains::build(&template, &graph, DomainConfig::default());
        let q = ConcreteQuery::materialize(&template, &domains, &Instantiation::root(&domains));
        groups.count_in_groups(&match_output_set(&graph, &q, MatchOptions::default()))
    };
    let c = (*root_counts.iter().min().unwrap() as f64 * 0.6) as u32;
    let spec = CoverageSpec::equal_opportunity(2, c.max(2));
    println!(
        "initial query: {} male / {} female -> asking for >= {c} of each\n",
        root_counts[0], root_counts[1]
    );

    println!("{}", render_template(s, &template));
    println!(
        "group populations: {} = {}, {} = {}\n",
        groups.name(GroupId(0)),
        groups.size(GroupId(0)),
        groups.name(GroupId(1)),
        groups.size(GroupId(1)),
    );

    let fair = FairSqg::new(&graph)
        .epsilon(0.1)
        .diversity(DiversityConfig {
            lambda: 0.5,
            relevance: Relevance::InDegreeNormalized,
            pair_cap: 256,
            seed: 7,
            ..DiversityConfig::default()
        });

    for (name, algo) in [("RfQGen", Algorithm::RfQGen), ("BiQGen", Algorithm::BiQGen)] {
        let result = fair.generate(&template, &groups, &spec, algo);
        let domains = fair.domains_for(&template);
        println!(
            "{name}: {} suggested queries in {:.0} ms ({} verified):",
            result.entries.len(),
            result.stats.elapsed.as_secs_f64() * 1e3,
            result.stats.verified,
        );
        let mut entries = result.entries.clone();
        entries.sort_by(|a, b| {
            b.objectives()
                .fcov
                .partial_cmp(&a.objectives().fcov)
                .unwrap()
        });
        let root = fairsqg::query::Instantiation::root(&domains);
        for e in entries.iter().take(4) {
            println!(
                "  [{} male / {} female of {} matches]  δ={:.2} f={:.0}  —  {}",
                e.result.counts[0],
                e.result.counts[1],
                e.result.matches.len(),
                e.result.objectives.delta,
                e.result.objectives.fcov,
                render_instance(s, &template, &domains, &e.inst),
            );
            println!(
                "      revision vs the initial query: {}",
                explain_revision(s, &template, &domains, &root, &e.inst)
            );
        }
        println!();
    }
}
